"""Tests of the comparator systems: eventual store, single server, sequencer log."""

import pytest

from repro.baselines.eventual import EventualStoreService
from repro.baselines.seqlog import SequencerLogService
from repro.baselines.singleserver import SingleServerStore
from repro.core.client import ClosedLoopClient, Command
from repro.kvstore.partitioning import HashPartitioner
from repro.sim.actor import Environment
from repro.sim.network import Network
from repro.sim.topology import single_datacenter


def make_env(seed=1):
    env = Environment(seed=seed)
    Network(env, single_datacenter(), jitter_fraction=0.0)
    return env


def kv_factory(op="update", key_count=50, groups=(0, 1, 2)):
    partitioner = HashPartitioner(list(groups))

    def factory(sequence):
        key = f"key{sequence % key_count:06d}"
        group = partitioner.group_for_key(key)
        if op == "update":
            command = Command(op="update", args=(key, None, 100), group_id=group, size_bytes=148)
        else:
            command = Command(op="read", args=(key,), group_id=group, size_bytes=48)
        return [command], [group]

    return factory, partitioner


class TestEventualStore:
    def test_reads_and_writes_complete_with_low_latency(self):
        env = make_env()
        service = EventualStoreService(env, partition_groups=[0, 1, 2], replication_factor=3)
        factory, partitioner = kv_factory()
        service.partitioner = partitioner
        client = ClosedLoopClient(env, "c", service.frontend_map(), factory, concurrency=4,
                                  metric_prefix="ec")
        for actor in env.actors():
            actor.on_start()
        env.run(until=1.0)
        assert client.completed > 100
        assert env.metrics.latency("ec.latency").mean_ms() < 5.0

    def test_writes_eventually_reach_all_replicas(self):
        env = make_env()
        service = EventualStoreService(env, partition_groups=[0], replication_factor=3)
        coordinator = service.replicas[0][0]
        command = Command(op="insert", args=("k", None, 10), group_id=0, client="")
        from repro.net.message import ClientRequest
        coordinator.deliver("tester", ClientRequest(command=command, client=""))
        env.run(until=1.0)
        for replica in service.replicas[0]:
            assert "k" in replica.store

    def test_concurrent_writes_can_diverge_in_order(self):
        env = make_env()
        service = EventualStoreService(env, partition_groups=[0], replication_factor=2)
        a, b = service.replicas[0]
        from repro.net.message import ClientRequest
        # Two clients write the same key through different coordinators: with
        # no ordering layer, the replicas may apply them in different orders.
        cmd1 = Command(op="update", args=("k", 1, 10), group_id=0, command_id=101)
        cmd2 = Command(op="update", args=("k", 2, 10), group_id=0, command_id=202)
        a.deliver("c1", ClientRequest(command=cmd1))
        b.deliver("c2", ClientRequest(command=cmd2))
        env.run(until=1.0)
        assert a.write_order("k") != b.write_order("k") or a.divergence_from(b) == 0
        # the orders observed locally start with the locally coordinated write
        assert a.write_order("k")[0] == 101
        assert b.write_order("k")[0] == 202

    def test_preload(self):
        env = make_env()
        service = EventualStoreService(env, partition_groups=[0, 1], replication_factor=2)
        service.preload({"a": 10, "b": 10, "c": 10})
        total = sum(len(r.store) for r in service.all_replicas())
        assert total == 2 * 3  # every key on both replicas of exactly one partition

    def test_invalid_replication_factor(self):
        with pytest.raises(ValueError):
            EventualStoreService(make_env(), partition_groups=[0], replication_factor=0)


class TestSingleServerStore:
    def test_operations_complete_and_are_strongly_consistent(self):
        env = make_env()
        server = SingleServerStore(env, "sql")
        server.preload({f"key{i:06d}": 100 for i in range(50)})
        factory, _ = kv_factory()
        client = ClosedLoopClient(env, "c", {0: "sql", 1: "sql", 2: "sql"}, factory,
                                  concurrency=4, metric_prefix="sql")
        for actor in env.actors():
            actor.on_start()
        env.run(until=1.0)
        assert client.completed > 100
        assert server.operations == client.completed

    def test_throughput_plateaus_with_more_clients(self):
        def run(concurrency):
            env = make_env(seed=concurrency)
            server = SingleServerStore(env, "sql", write_service_time=0.001)
            factory, _ = kv_factory()
            client = ClosedLoopClient(env, "c", {g: "sql" for g in (0, 1, 2)}, factory,
                                      concurrency=concurrency, metric_prefix="sql")
            for actor in env.actors():
                actor.on_start()
            env.run(until=1.0)
            return client.completed

        low, high = run(2), run(50)
        assert high <= low * 3  # the single server saturates instead of scaling


class TestSequencerLog:
    def test_appends_wait_for_batch_and_quorum(self):
        env = make_env()
        service = SequencerLogService(env, ensemble_size=3, batch_window=0.010)

        def factory(sequence):
            command = Command(op="append", args=(), group_id=0, size_bytes=1024 + 40)
            return [command], [0]

        client = ClosedLoopClient(env, "c", service.frontend_map([0]), factory,
                                  concurrency=8, metric_prefix="bk")
        for actor in env.actors():
            actor.on_start()
        env.run(until=2.0)
        assert client.completed > 20
        assert service.leader.appends_acknowledged == client.completed
        # latency includes the batching window
        assert env.metrics.latency("bk.latency").mean_ms() >= 5.0

    def test_storage_nodes_write_batches_synchronously(self):
        env = make_env()
        service = SequencerLogService(env, ensemble_size=3)

        def factory(sequence):
            return [Command(op="append", args=(), group_id=0, size_bytes=1024)], [0]

        client = ClosedLoopClient(env, "c", service.frontend_map([0]), factory,
                                  concurrency=4, metric_prefix="bk")
        for actor in env.actors():
            actor.on_start()
        env.run(until=1.0)
        assert all(node.disk.write_count > 0 for node in service.storage_nodes)

    def test_leader_requires_storage_nodes(self):
        from repro.baselines.seqlog import SequencerLogLeader
        with pytest.raises(ValueError):
            SequencerLogLeader(make_env(), "leader", storage_nodes=[])
