"""Integration tests of Multi-Ring Paxos processes (multiple rings, one learner)."""

import pytest

from repro.core import AtomicMulticast, MultiRingConfig

from tests.conftest import RecordingProcess, build_two_ring_system


class TestMultiRingDelivery:
    def test_learner_of_two_rings_interleaves_deterministically(self):
        system, shared, solo = build_two_ring_system()
        for i in range(10):
            shared[0].multicast(0, payload=f"r0-{i}", size_bytes=64)
            shared[1].multicast(1, payload=f"r1-{i}", size_bytes=64)
        system.run(until=2.0)
        sequences = [p.delivered_payloads() for p in shared]
        assert sequences[0] == sequences[1] == sequences[2]
        assert len(sequences[0]) == 20

    def test_single_ring_subscriber_sees_only_its_ring(self):
        system, shared, solo = build_two_ring_system()
        shared[0].multicast(0, payload="only-ring0", size_bytes=64)
        shared[0].multicast(1, payload="only-ring1", size_bytes=64)
        system.run(until=2.0)
        assert solo.delivered_payloads() == ["only-ring1"]
        assert solo.subscribed_groups() == [1]

    def test_rate_leveling_keeps_merge_going_when_one_ring_is_idle(self):
        system, shared, solo = build_two_ring_system()
        # Only ring 0 carries traffic; ring 1 must emit skips so learners of
        # both rings still deliver ring 0's values.
        for i in range(10):
            shared[0].multicast(0, payload=f"v{i}", size_bytes=64)
        system.run(until=2.0)
        assert len(shared[1].delivered_payloads(0)) == 10
        skips = shared[0].node(1).coordinator.total_skipped if shared[0].node(1).coordinator else 0
        # Ring 1's coordinator (whoever holds it) proposed skip instances.
        coordinator_name = system.ring(1).coordinator
        coordinator = system.env.actor(coordinator_name)
        assert coordinator.node(1).coordinator.total_skipped > 0

    def test_without_rate_leveling_an_idle_ring_stalls_delivery(self):
        config = MultiRingConfig(rate_interval=None, checkpoint_interval=None, trim_interval=None)
        system = AtomicMulticast(seed=6, config=config)
        processes = [RecordingProcess(system.env, f"q{i}") for i in range(3)]
        system.create_ring(0, [(p.name, "pal") for p in processes])
        system.create_ring(1, [(p.name, "pal") for p in processes])
        system.start()
        processes[0].multicast(0, payload="first", size_bytes=64)
        processes[0].multicast(0, payload="stuck-behind-idle-ring", size_bytes=64)
        system.run(until=2.0)
        # M=1: after consuming one instance from ring 0 the merge waits for an
        # instance from ring 1, which never produces one — so the second ring-0
        # value cannot be delivered.  This is exactly the stall that rate
        # leveling (skip instances) prevents.
        assert processes[1].delivered_payloads() == ["first"]

    def test_messages_per_round_parameter(self):
        system, shared, solo = build_two_ring_system(messages_per_round=2)
        for p in shared:
            assert p.merger.groups == [0, 1]
        for i in range(4):
            shared[0].multicast(0, payload=f"a{i}", size_bytes=64)
            shared[0].multicast(1, payload=f"b{i}", size_bytes=64)
        system.run(until=2.0)
        delivered = shared[2].delivered_payloads()
        assert len(delivered) == 8
        # With M=2 the merge consumes two ring-0 values before ring-1 values.
        first_four = delivered[:4]
        assert first_four[0].startswith("a") and first_four[1].startswith("a")

    def test_cannot_join_same_ring_twice(self):
        config = MultiRingConfig(rate_interval=None)
        system = AtomicMulticast(seed=1, config=config)
        p = RecordingProcess(system.env, "p0")
        ring = system.create_ring(0, [(p.name, "pal")])
        with pytest.raises(ValueError):
            p.join_ring(ring)

    def test_multicast_to_unknown_group_rejected(self):
        config = MultiRingConfig(rate_interval=None)
        system = AtomicMulticast(seed=1, config=config)
        p = RecordingProcess(system.env, "p0")
        system.create_ring(0, [(p.name, "pal")])
        with pytest.raises(KeyError):
            p.multicast(5, payload="x", size_bytes=10)

    def test_delivered_position_tracks_per_group(self):
        system, shared, solo = build_two_ring_system()
        shared[0].multicast(0, payload="x", size_bytes=64)
        system.run(until=1.0)
        assert shared[0].delivered_position(0) >= 0
        assert shared[0].delivered_position(5) == -1
