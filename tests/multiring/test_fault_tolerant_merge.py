"""Fault tolerance of the streaming merge: incarnation tags, dedup, and
watermark hygiene.

A crashed-and-restarted producer re-emits its ring's stream prefix under a
bumped incarnation; the cursor must dedup the prefix (verifying every
re-emitted instance decided the same value), reject stale or duplicated
barrier watermarks loudly, and validate resume positions so a segment lost
in transport is an error rather than a silent gap.  The
:class:`RingSegmentBuffer` is the producer half: its crash boundary must
drop the uncut tail (the restart re-emits it) and keep down rings out of
cuts so consumers stall honestly.
"""

import pytest

from repro.multiring.merge import (
    MergeCursor,
    MergeDivergenceError,
    RingSegment,
    RingSegmentBuffer,
    StaleWatermarkError,
    effective_streams,
    replay_streams,
)
from repro.paxos.messages import SKIP, ProposalValue


def value(payload, size=10):
    return ProposalValue(payload=payload, size_bytes=size)


def skip():
    return ProposalValue(payload=SKIP, size_bytes=0)


def entries(ring, lo, hi):
    """Ordered (instance, value) pairs ``lo..hi`` inclusive for ``ring``."""
    return [(i, value(f"r{ring}i{i}")) for i in range(lo, hi + 1)]


class TestStaleWatermarkRejection:
    def test_duplicate_barrier_watermark_raises_naming_marks(self):
        cursor = MergeCursor([0, 1])
        cursor.feed_segments({0: entries(0, 0, 1), 1: entries(1, 0, 1)}, watermark=1.0)
        with pytest.raises(StaleWatermarkError) as excinfo:
            cursor.feed_segments({}, watermark=1.0)
        message = str(excinfo.value)
        assert "1.0" in message
        assert "ring marks" in message

    def test_regressed_barrier_watermark_raises(self):
        cursor = MergeCursor([0])
        cursor.feed_segments({}, watermark=2.0)
        with pytest.raises(StaleWatermarkError):
            cursor.feed_segments({}, watermark=1.5)

    def test_rejection_leaves_cursor_usable(self):
        cursor = MergeCursor([0])
        cursor.feed_segments({0: entries(0, 0, 0)}, watermark=1.0)
        with pytest.raises(StaleWatermarkError):
            cursor.feed_segments({}, watermark=1.0)
        out = cursor.feed_segments({0: entries(0, 1, 1)}, watermark=2.0)
        assert [(g, i) for g, i, _ in out] == [(0, 1)]
        assert cursor.watermark == 2.0
        assert cursor.last_barrier == 2.0

    def test_per_ring_watermark_still_rejects_backwards(self):
        cursor = MergeCursor([0])
        cursor.feed(0, (), watermark=3.0)
        with pytest.raises(ValueError, match="backwards"):
            cursor.feed(0, (), watermark=2.0)


class TestIncarnationDedup:
    def test_restarted_producer_prefix_is_deduped(self):
        cursor = MergeCursor([0, 1])
        # Incarnation 0 ships instances 0..4 of ring 0.
        cursor.feed_segments(
            {
                0: RingSegment(incarnation=0, start=0, entries=entries(0, 0, 4)),
                1: RingSegment(incarnation=0, start=0, entries=entries(1, 0, 4)),
            },
            watermark=1.0,
        )
        # The producer restarts and re-emits 0..6: only 5, 6 are new.
        cursor.feed_segments(
            {
                0: RingSegment(incarnation=1, start=0, entries=entries(0, 0, 6)),
                1: RingSegment(incarnation=0, start=5, entries=entries(1, 5, 6)),
            },
            watermark=2.0,
        )
        assert cursor.duplicates_dropped == 5
        assert cursor.incarnation(0) == 1
        merged = [(g, i) for g, i, _ in cursor.merged]
        expected = replay_streams(
            {0: entries(0, 0, 6), 1: entries(1, 0, 6)}
        )
        assert merged == [(g, i) for g, i, _ in expected]

    def test_divergent_reemission_raises(self):
        cursor = MergeCursor([0])
        cursor.feed_segments(
            {0: RingSegment(incarnation=0, start=0, entries=entries(0, 0, 2))},
            watermark=1.0,
        )
        poisoned = entries(0, 0, 3)
        poisoned[1] = (1, value("not-what-was-decided"))
        with pytest.raises(MergeDivergenceError, match="instance 1"):
            cursor.feed_segments(
                {0: RingSegment(incarnation=1, start=0, entries=poisoned)},
                watermark=2.0,
            )

    def test_stale_incarnation_raises(self):
        cursor = MergeCursor([0])
        cursor.feed(0, entries(0, 0, 1), incarnation=2, start=0)
        with pytest.raises(ValueError, match="stale incarnation"):
            cursor.feed(0, entries(0, 2, 2), incarnation=1, start=0)

    def test_lost_segment_is_detected_by_resume_position(self):
        cursor = MergeCursor([0])
        cursor.feed(0, entries(0, 0, 2), incarnation=0, start=0)
        # The segment carrying entries 3..4 was lost in transport.
        with pytest.raises(ValueError, match="lost or reordered"):
            cursor.feed(0, entries(0, 5, 6), incarnation=0, start=5)

    def test_skip_reemission_dedups_like_any_value(self):
        cursor = MergeCursor([0])
        stream = [(0, value("a")), (1, skip()), (2, value("b"))]
        cursor.feed(0, stream, incarnation=0, start=0)
        cursor.feed(0, stream, incarnation=1, start=0)
        assert cursor.duplicates_dropped == 3
        assert [(g, i) for g, i, _ in cursor.merged] == [(0, 0), (0, 2)]


class TestRingSegmentBufferCrashBoundary:
    def test_uncut_tail_is_dropped_at_crash_and_ring_leaves_cuts(self):
        buffer = RingSegmentBuffer()
        buffer.subscribe([7])
        for instance, val in entries(7, 0, 2):
            buffer.append(7, instance, val)
        first = buffer.cut()
        assert [i for i, _ in first[7].entries] == [0, 1, 2]
        # Recorded after the cut, then the producer crashes: the tail must
        # not be shipped later — the restart re-emits it under the next
        # incarnation, and shipping both would hand the consumer a
        # non-contiguous stream.
        buffer.append(7, 3, value("r7i3"))
        before = buffer.total_entries
        buffer.mark_down([7])
        assert buffer.total_entries == before - 1
        assert buffer.cut() == {}, "down ring must be uncovered, not empty"

    def test_restart_bumps_incarnation_and_resets_resume_position(self):
        buffer = RingSegmentBuffer()
        buffer.subscribe([7])
        for instance, val in entries(7, 0, 2):
            buffer.append(7, instance, val)
        buffer.cut()
        buffer.mark_down([7])
        buffer.mark_restart([7])
        assert buffer.incarnation(7) == 1
        # The recreated learner re-emits from instance 0.
        for instance, val in entries(7, 0, 4):
            buffer.append(7, instance, val)
        segment = buffer.cut()[7]
        assert segment.incarnation == 1
        assert segment.start == 0
        assert [i for i, _ in segment.entries] == [0, 1, 2, 3, 4]

    def test_cut_sequence_feeds_cursor_to_the_offline_anchor(self):
        """The regression: crash between cuts, then restart and re-emit.

        Shipping every cut through a cursor must reproduce exactly
        ``replay_streams`` over the deduped stream — the pre-crash uncut
        tail neither leaks nor is lost.
        """
        buffer = RingSegmentBuffer()
        buffer.subscribe([0])
        cursor = MergeCursor([0])
        barrier = 0.0

        def ship():
            nonlocal barrier
            barrier += 1.0
            cuts = buffer.cut()
            cursor.feed_segments(cuts, watermark=barrier, groups=sorted(cuts))

        for instance, val in entries(0, 0, 2):
            buffer.append(0, instance, val)
        ship()
        buffer.append(0, 3, value("r0i3"))  # uncut at crash time
        buffer.mark_down([0])
        ship()  # barrier while down: uncovered
        buffer.mark_restart([0])
        for instance, val in entries(0, 0, 5):  # re-emission, plus progress
            buffer.append(0, instance, val)
        ship()
        expected = replay_streams({0: entries(0, 0, 5)})
        assert cursor.merged == expected
        assert cursor.duplicates_dropped == 3

    def test_idle_known_ring_yields_empty_covered_segment(self):
        buffer = RingSegmentBuffer()
        buffer.subscribe([3, 4])
        buffer.append(3, 0, value("x"))
        cuts = buffer.cut()
        assert set(cuts) == {3, 4}
        assert cuts[4].entries == []


class TestEffectiveStreams:
    def test_dedups_across_incarnations(self):
        history = {
            0: [
                RingSegment(incarnation=0, entries=entries(0, 0, 3)),
                RingSegment(incarnation=1, entries=entries(0, 0, 5)),
            ]
        }
        flat = effective_streams(history)
        assert [i for i, _ in flat[0]] == [0, 1, 2, 3, 4, 5]

    def test_divergent_history_raises(self):
        history = {
            0: [
                RingSegment(incarnation=0, entries=[(0, value("a"))]),
                RingSegment(incarnation=1, entries=[(0, value("b"))]),
            ]
        }
        with pytest.raises(MergeDivergenceError):
            effective_streams(history)

    def test_any_chunking_matches_the_anchor(self):
        history = {
            0: [
                RingSegment(incarnation=0, entries=entries(0, 0, 4)),
                RingSegment(incarnation=1, entries=entries(0, 0, 7)),
            ],
            1: [RingSegment(incarnation=0, entries=entries(1, 0, 7))],
        }
        anchor = replay_streams(effective_streams(history))
        for chunk in (1, 2, 3):
            cursor = MergeCursor([0, 1])
            barrier = 0.0
            for ring, runs in sorted(history.items()):
                for run in runs:
                    offset = 0
                    while offset < len(run.entries):
                        barrier += 1.0
                        piece = run.entries[offset:offset + chunk]
                        cursor.feed_segments(
                            {ring: RingSegment(run.incarnation, offset, piece)},
                            watermark=barrier,
                            groups=[ring],
                        )
                        offset += len(piece)
            assert cursor.merged == anchor
