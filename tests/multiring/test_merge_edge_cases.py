"""Edge cases of the deterministic merger around the fast-path refactor:
``fast_forward`` after checkpoint installs and mid-stream ``subscribe``.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.multiring.merge import DeterministicMerger, MergeCursor, replay_streams
from repro.paxos.messages import SKIP, ProposalValue


def value(payload, size=10):
    return ProposalValue(payload=payload, size_bytes=size)


def skip():
    return ProposalValue(payload=SKIP, size_bytes=0)


def make(groups, m=1):
    out = []
    merger = DeterministicMerger(
        groups, messages_per_round=m, on_deliver=lambda g, i, v: out.append((g, i, v.payload))
    )
    return merger, out


class TestFastForward:
    def test_drops_queued_entries_at_or_below_position(self):
        merger, out = make([0, 1])
        # Ring 1 races ahead while ring 0 stalls: instances queue up.
        for i in range(5):
            merger.offer(1, i, value(f"b{i}"))
        assert out == []
        merger.fast_forward({1: 2})
        # Instances 0-2 of ring 1 are covered by the checkpoint; only 3, 4
        # remain queued, and the merge restarts at a round boundary.
        assert merger.pending(1) == 2
        assert merger.is_round_boundary()
        merger.offer(0, 0, value("a0"))
        merger.offer(0, 1, value("a1"))
        assert out == [(0, 0, "a0"), (1, 3, "b3"), (0, 1, "a1"), (1, 4, "b4")]

    def test_position_below_queue_head_is_a_noop_on_the_queue(self):
        merger, out = make([0, 1])
        merger.offer(1, 7, value("b7"))
        merger.fast_forward({1: 3})
        assert merger.pending(1) == 1

    def test_unknown_group_positions_are_ignored(self):
        merger, _ = make([0])
        merger.fast_forward({5: 10})  # not subscribed — must not raise
        assert merger.groups == [0]

    def test_resets_mid_round_pointer(self):
        merger, out = make([0, 1], m=2)
        merger.offer(0, 0, value("a0"))  # one of two consumed from ring 0
        assert not merger.is_round_boundary()
        merger.fast_forward({})
        assert merger.is_round_boundary()
        # After the reset the merge wants ring 0 again from a fresh round.
        merger.offer(0, 1, value("a1"))
        merger.offer(0, 2, value("a2"))
        merger.offer(1, 0, value("b0"))
        assert out == [(0, 0, "a0"), (0, 1, "a1"), (0, 2, "a2"), (1, 0, "b0")]


class TestMidStreamSubscribe:
    def test_subscribe_resets_round_deterministically(self):
        merger, out = make([0])
        merger.offer(0, 0, value("a0"))
        merger.subscribe(1)
        assert merger.groups == [0, 1]
        assert merger.is_round_boundary()
        # The new round starts at the lowest group id, and ring 1 now gates
        # the round-robin exactly like an original subscription.
        merger.offer(0, 1, value("a1"))
        merger.offer(0, 2, value("a2"))
        assert out == [(0, 0, "a0"), (0, 1, "a1")]  # a2 waits for ring 1
        merger.offer(1, 0, value("b0"))
        assert out[-2:] == [(1, 0, "b0"), (0, 2, "a2")]

    def test_subscribe_lower_id_takes_merge_precedence(self):
        merger, out = make([5])
        merger.offer(5, 0, value("e0"))
        merger.subscribe(2)
        merger.offer(5, 1, value("e1"))  # queued: round now starts at ring 2
        assert out == [(5, 0, "e0")]
        merger.offer(2, 0, value("c0"))
        assert out[-2:] == [(2, 0, "c0"), (5, 1, "e1")]

    def test_subscribe_existing_group_is_a_noop(self):
        merger, out = make([0, 1])
        merger.offer(0, 0, value("a0"))
        merger.offer(1, 0, value("b0"))
        merger.subscribe(1)
        merger.offer(0, 1, value("a1"))
        merger.offer(1, 1, value("b1"))
        assert out == [(0, 0, "a0"), (1, 0, "b0"), (0, 1, "a1"), (1, 1, "b1")]

    def test_skips_still_advance_rounds_after_subscribe(self):
        merger, out = make([0])
        merger.subscribe(1)
        merger.offer(0, 0, value("a0"))
        merger.offer(1, 0, skip())
        merger.offer(0, 1, value("a1"))
        assert out == [(0, 0, "a0"), (0, 1, "a1")]
        assert merger.skipped_count == 1
        assert merger.delivered_count == 2


class TestOfferFastPathEquivalence:
    """The empty-queue direct-emit path must not change the merge order."""

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.sampled_from([0, 1, 2]), min_size=0, max_size=30), st.integers(1, 3))
    def test_any_interleaving_produces_the_round_robin_order(self, picks, m):
        merger, out = make([0, 1, 2], m=m)
        counters = {0: 0, 1: 0, 2: 0}
        for g in picks:
            merger.offer(g, counters[g], value((g, counters[g])))
            counters[g] += 1
        # Reference: feed the same per-ring streams strictly ring-by-ring.
        ref_merger, ref_out = make([0, 1, 2], m=m)
        for g in (0, 1, 2):
            for i in range(counters[g]):
                ref_merger.offer(g, i, value((g, i)))
        assert sorted(out) == sorted(ref_out)
        # Prefix property: whatever was emitted follows ascending instance
        # order per ring.
        for g in (0, 1, 2):
            per_ring = [i for gg, i, _ in out if gg == g]
            assert per_ring == sorted(per_ring)


class TestMergeCursor:
    """Edge cases of the streaming merge cursor (the reactive merge stage)."""

    def _cursor(self, groups, m=1):
        out = []
        cursor = MergeCursor(
            groups,
            messages_per_round=m,
            on_deliver=lambda g, i, v: out.append((g, i, v.payload)),
        )
        return cursor, out

    # -------------------------------------------------- empty per-ring streams
    def test_empty_stream_gates_the_round_robin(self):
        """A subscribed ring that never produces blocks emission past it —
        the cursor must not invent progress an absent stream could refute."""
        cursor, out = self._cursor([0, 1])
        drained = cursor.feed_segments({0: [(0, value("a0")), (1, value("a1"))]},
                                       watermark=1.0)
        assert [v.payload for _, _, v in drained] == ["a0"]
        assert out == [(0, 0, "a0")]
        assert cursor.pending(0) == 1  # a1 waits for ring 1's first entry
        # An explicitly empty segment for ring 1 changes nothing but the
        # watermark — still no emission past the empty ring.
        drained = cursor.feed_segments({1: []}, watermark=2.0)
        assert drained == []
        assert cursor.watermark == 2.0

    def test_replay_of_empty_stream_mapping_matches_cursor(self):
        streams = {0: [(0, value("a0"))], 1: []}
        replayed = replay_streams(streams)
        assert [(g, i, v.payload) for g, i, v in replayed] == [(0, 0, "a0")]

    # ------------------------------------------------------ learner-only rings
    def test_learner_only_ring_of_skips_advances_but_delivers_nothing(self):
        """A ring carrying only rate-leveled skips (fig6's common ring, a
        learner-only subscription) advances the round-robin silently."""
        cursor, out = self._cursor([0, 99])
        cursor.feed(0, [(i, value(f"a{i}")) for i in range(3)], watermark=1.0)
        cursor.feed(99, [(i, skip()) for i in range(3)], watermark=1.0)
        assert out == [(0, 0, "a0"), (0, 1, "a1"), (0, 2, "a2")]
        assert cursor.skipped_count == 3
        assert cursor.delivered_count == 3
        assert cursor.watermark == 1.0

    # ------------------------------------- trailing SKIP runs and watermarks
    def test_trailing_skip_run_does_not_emit_past_the_joint_watermark(self):
        """A stream ending in a run of SKIPs must not let the cursor emit
        deliveries the other ring has not yet covered: the joint watermark —
        and the round-robin gate behind it — stays at the slower ring."""
        cursor, out = self._cursor([0, 1])
        # Ring 0 complete up to t=5: one payload, then only skips.
        cursor.feed(0, [(0, value("a0"))] + [(i, skip()) for i in range(1, 6)],
                    watermark=5.0)
        # Ring 1 lags: complete only up to t=1, nothing decided yet.
        cursor.feed(1, [], watermark=1.0)
        assert cursor.watermark == 1.0
        assert out == [(0, 0, "a0")]
        assert [v.payload for _, _, v in cursor.drain()] == ["a0"]
        # Ring 0's skip run is consumed only as ring 1 catches up — one
        # round-robin turn per ring-1 entry, never beyond the joint watermark.
        drained = cursor.feed_segments({1: [(0, value("b0"))]}, watermark=2.0)
        assert [v.payload for _, _, v in drained] == ["b0"]
        assert cursor.watermark == 2.0
        assert cursor.pending(0) > 0, "trailing skips must not all be consumed"
        # Once ring 1 ends too, the skip tail drains without emitting anything.
        before = len(out)
        cursor.feed_segments({1: [(i, skip()) for i in range(1, 6)]}, watermark=5.0)
        assert len(out) == before
        assert cursor.watermark == 5.0
        assert cursor.pending(0) == 0

    def test_watermark_none_until_every_ring_reports(self):
        cursor, _ = self._cursor([0, 1])
        assert cursor.watermark is None
        cursor.feed(0, [], watermark=3.0)
        assert cursor.watermark is None
        cursor.feed(1, [], watermark=2.0)
        assert cursor.watermark == 2.0

    def test_watermark_must_not_move_backwards(self):
        cursor, _ = self._cursor([0])
        cursor.feed(0, [], watermark=2.0)
        with pytest.raises(ValueError, match="backwards"):
            cursor.feed(0, [], watermark=1.0)

    def test_feeding_an_unsubscribed_ring_raises(self):
        cursor, _ = self._cursor([0])
        with pytest.raises(KeyError):
            cursor.feed(7, [(0, value("x"))])

    # --------------------------------------------- chunking invariance (core)
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(1, 4), min_size=1, max_size=8),
        st.integers(1, 3),
    )
    def test_any_chunking_matches_the_offline_replay(self, chunks, m):
        """Streaming the same streams in arbitrary segment sizes is
        bit-identical to the offline replay — the merge-stage invariant the
        reactive differential tests rely on."""
        streams = {
            0: [(i, value(f"a{i}") if i % 3 else skip()) for i in range(10)],
            1: [(i, value(f"b{i}")) for i in range(7)],
            2: [(i, skip()) for i in range(9)],
        }
        reference = [
            (g, i, v.payload)
            for g, i, v in replay_streams(streams, messages_per_round=m)
        ]
        cursor, out = self._cursor([0, 1, 2], m=m)
        positions = {g: 0 for g in streams}
        barrier = 0
        chunk_index = 0
        while any(positions[g] < len(streams[g]) for g in streams):
            barrier += 1
            chunk = chunks[chunk_index % len(chunks)]
            chunk_index += 1
            segments = {}
            for g in sorted(streams):
                at = positions[g]
                entries = streams[g][at:at + chunk]
                if entries:
                    segments[g] = entries
                    positions[g] += len(entries)
            cursor.feed_segments(segments, watermark=float(barrier))
        assert out == reference
        assert cursor.watermark == float(barrier)
