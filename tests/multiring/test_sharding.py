"""Tests of the shard planner (`repro.multiring.sharding`)."""

from __future__ import annotations

import pytest

from repro.multiring import GroupSubscriptions, conservative_lookahead, plan_shards, ring_components
from repro.sim.topology import Topology


def wan_topology():
    topo = Topology(local_latency=0.0001, local_bandwidth_bps=10e9)
    for name in ("a", "b", "c"):
        topo.add_site(name)
    topo.set_link("a", "b", one_way_latency=0.010)
    topo.set_link("b", "c", one_way_latency=0.030)
    topo.set_link("a", "c", one_way_latency=0.020)
    return topo


# ---------------------------------------------------------------------------
# Components
# ---------------------------------------------------------------------------

def test_disjoint_rings_are_separate_components():
    assert ring_components({0: ["a", "b"], 1: ["c", "d"], 2: ["e"]}) == [[0], [1], [2]]


def test_shared_process_merges_rings():
    assert ring_components({0: ["a", "b"], 1: ["b", "c"], 2: ["d"]}) == [[0, 1], [2]]


def test_transitive_sharing_merges_chains():
    # 0-1 share b, 1-2 share c: all three are one component.
    comps = ring_components({0: ["a", "b"], 1: ["b", "c"], 2: ["c", "d"]})
    assert comps == [[0, 1, 2]]


def test_components_are_deterministic():
    rings = {3: ["x", "y"], 1: ["y", "z"], 7: ["q"], 5: ["r", "s"]}
    assert ring_components(rings) == ring_components(dict(reversed(list(rings.items()))))


def test_co_subscription_components():
    subs = GroupSubscriptions()
    subs.subscribe("p1", 0)
    subs.subscribe("p1", 1)  # p1 merges rings 0 and 1
    subs.subscribe("p2", 2)
    subs.subscribe("p3", 3)
    subs.subscribe("p3", 2)  # p3 merges rings 2 and 3
    assert subs.co_subscription_components() == [[0, 1], [2, 3]]


# ---------------------------------------------------------------------------
# Planning
# ---------------------------------------------------------------------------

def test_plan_balances_components_over_workers():
    rings = {0: ["a", "b", "c"], 1: ["d", "e", "f"], 2: ["g", "h"], 3: ["i"]}
    plan = plan_shards(rings, workers=2)
    assert plan.shard_count == 2
    # Every ring lands somewhere, exactly once.
    placed = sorted(r for shard in plan.shards for r in shard)
    assert placed == [0, 1, 2, 3]
    # Greedy balance: the two 3-member components split across shards.
    assert plan.shard_of_ring(0) != plan.shard_of_ring(1)
    # Every actor maps to the shard of its ring.
    assert plan.actor_shard["a"] == plan.shard_of_ring(0)
    assert plan.actor_shard["i"] == plan.shard_of_ring(3)


def test_plan_never_splits_a_component():
    rings = {0: ["a", "b"], 1: ["b", "c"], 2: ["d"]}
    plan = plan_shards(rings, workers=4)
    assert plan.shard_count == 2  # only two independent components exist
    assert plan.shard_of_ring(0) == plan.shard_of_ring(1)


def test_plan_is_deterministic():
    rings = {i: [f"p{i}a", f"p{i}b"] for i in range(6)}
    plans = [plan_shards(rings, workers=3) for _ in range(3)]
    assert plans[0].shards == plans[1].shards == plans[2].shards


def test_lookahead_from_topology():
    topo = wan_topology()
    rings = {0: ["pa"], 1: ["pb"], 2: ["pc"]}
    sites = {"pa": "a", "pb": "b", "pc": "c"}
    plan = plan_shards(rings, workers=3, actor_sites=sites, topology=topo)
    assert plan.lookahead == pytest.approx(0.010)  # the a<->b link is tightest


def test_lookahead_none_without_topology():
    plan = plan_shards({0: ["a"], 1: ["b"]}, workers=2)
    assert plan.lookahead is None


def test_colocated_shards_rejected_for_windowed_execution():
    topo = wan_topology()
    rings = {0: ["pa"], 1: ["pb"]}
    sites = {"pa": "a", "pb": "a"}  # both shards on site "a"
    with pytest.raises(ValueError, match="co-located"):
        plan_shards(rings, workers=2, actor_sites=sites, topology=topo)


def test_cross_shard_subscription_rejected():
    subs = GroupSubscriptions()
    subs.subscribe("observer", 0)
    subs.subscribe("observer", 1)
    # The ring membership alone makes 0 and 1 disjoint, but the subscription
    # table says some learner merges both: the plan must refuse.
    with pytest.raises(ValueError, match="co-subscribed groups must be co-located"):
        plan_shards({0: ["a"], 1: ["b"]}, workers=2, subscriptions=subs)


def test_conservative_lookahead_ignores_same_shard_pairs():
    topo = wan_topology()
    lookahead = conservative_lookahead(
        topo,
        actor_sites={"p1": "a", "p2": "b", "p3": "c"},
        actor_shard={"p1": 0, "p2": 0, "p3": 1},
    )
    # Only shard 0 (a, b) vs shard 1 (c) pairs count: min(b-c, a-c) = 0.020.
    assert lookahead == pytest.approx(0.020)
