"""Tests of the shard planner (`repro.multiring.sharding`)."""

from __future__ import annotations

import pytest

from repro.multiring import GroupSubscriptions, conservative_lookahead, plan_shards, ring_components
from repro.sim.topology import Topology


def wan_topology():
    topo = Topology(local_latency=0.0001, local_bandwidth_bps=10e9)
    for name in ("a", "b", "c"):
        topo.add_site(name)
    topo.set_link("a", "b", one_way_latency=0.010)
    topo.set_link("b", "c", one_way_latency=0.030)
    topo.set_link("a", "c", one_way_latency=0.020)
    return topo


# ---------------------------------------------------------------------------
# Components
# ---------------------------------------------------------------------------

def test_disjoint_rings_are_separate_components():
    assert ring_components({0: ["a", "b"], 1: ["c", "d"], 2: ["e"]}) == [[0], [1], [2]]


def test_shared_process_merges_rings():
    assert ring_components({0: ["a", "b"], 1: ["b", "c"], 2: ["d"]}) == [[0, 1], [2]]


def test_transitive_sharing_merges_chains():
    # 0-1 share b, 1-2 share c: all three are one component.
    comps = ring_components({0: ["a", "b"], 1: ["b", "c"], 2: ["c", "d"]})
    assert comps == [[0, 1, 2]]


def test_components_are_deterministic():
    rings = {3: ["x", "y"], 1: ["y", "z"], 7: ["q"], 5: ["r", "s"]}
    assert ring_components(rings) == ring_components(dict(reversed(list(rings.items()))))


def test_co_subscription_components():
    subs = GroupSubscriptions()
    subs.subscribe("p1", 0)
    subs.subscribe("p1", 1)  # p1 merges rings 0 and 1
    subs.subscribe("p2", 2)
    subs.subscribe("p3", 3)
    subs.subscribe("p3", 2)  # p3 merges rings 2 and 3
    assert subs.co_subscription_components() == [[0, 1], [2, 3]]


# ---------------------------------------------------------------------------
# Planning
# ---------------------------------------------------------------------------

def test_plan_balances_components_over_workers():
    rings = {0: ["a", "b", "c"], 1: ["d", "e", "f"], 2: ["g", "h"], 3: ["i"]}
    plan = plan_shards(rings, workers=2)
    assert plan.shard_count == 2
    # Every ring lands somewhere, exactly once.
    placed = sorted(r for shard in plan.shards for r in shard)
    assert placed == [0, 1, 2, 3]
    # Greedy balance: the two 3-member components split across shards.
    assert plan.shard_of_ring(0) != plan.shard_of_ring(1)
    # Every actor maps to the shard of its ring.
    assert plan.actor_shard["a"] == plan.shard_of_ring(0)
    assert plan.actor_shard["i"] == plan.shard_of_ring(3)


def test_plan_never_splits_a_component():
    rings = {0: ["a", "b"], 1: ["b", "c"], 2: ["d"]}
    plan = plan_shards(rings, workers=4)
    assert plan.shard_count == 2  # only two independent components exist
    assert plan.shard_of_ring(0) == plan.shard_of_ring(1)


def test_plan_is_deterministic():
    rings = {i: [f"p{i}a", f"p{i}b"] for i in range(6)}
    plans = [plan_shards(rings, workers=3) for _ in range(3)]
    assert plans[0].shards == plans[1].shards == plans[2].shards


def test_greedy_tie_break_is_canonical():
    """Equal-weight components are placed by canonical name, not dict order.

    Regression: every insertion order of ``ring_members`` must yield the same
    plan, and ties must resolve by the components' sorted ring-id tuples —
    never by set/dict iteration order.
    """
    items = [
        (5, ["e1", "e2"]),
        (1, ["a1", "a2"]),
        (7, ["g1", "g2"]),
        (3, ["c1", "c2"]),
    ]
    reference = plan_shards(dict(items), workers=2)
    for variant in (dict(reversed(items)), dict(sorted(items)), dict(items[2:] + items[:2])):
        assert plan_shards(variant, workers=2).shards == reference.shards
    # Explicit expectation: ascending canonical order 1, 3, 5, 7 alternates
    # onto the lightest shard (ties to the lowest shard id).
    assert reference.shards == ((1, 5), (3, 7))


# ---------------------------------------------------------------------------
# Shared-learner (merge-stage) planning
# ---------------------------------------------------------------------------

def test_shared_learner_splits_components_and_records_merge():
    """A learner-only process shared by every ring no longer couples them."""
    rings = {
        0: ["a0", "a1", "shared"],
        1: ["b0", "b1", "shared"],
        99: ["c0", "shared"],
    }
    # Without the declaration the shared subscriber fuses everything.
    assert plan_shards(rings, workers=3).shard_count == 1
    plan = plan_shards(rings, workers=3, shared_learners=["shared"])
    assert plan.shard_count == 3
    assert plan.merge_learners == {"shared": (0, 1, 99)}
    assert "shared" not in plan.actor_shard
    assert plan.actor_shard["a0"] != plan.actor_shard["b0"]


def test_shared_learner_subscriptions_exempt_from_co_location():
    subs = GroupSubscriptions()
    subs.subscribe("shared", 0)
    subs.subscribe("shared", 1)
    plan = plan_shards(
        {0: ["a", "shared"], 1: ["b", "shared"]},
        workers=2,
        subscriptions=subs,
        shared_learners=["shared"],
    )
    assert plan.shard_count == 2
    assert plan.merge_learners == {"shared": (0, 1)}
    # A *second*, undeclared cross-shard subscriber still rejects the plan.
    subs.subscribe("observer", 0)
    subs.subscribe("observer", 1)
    with pytest.raises(ValueError, match="co-subscribed"):
        plan_shards(
            {0: ["a", "shared"], 1: ["b", "shared"]},
            workers=2,
            subscriptions=subs,
            shared_learners=["shared"],
        )


def test_mrpstore_dedicated_global_ring_shares_learners_only():
    """The fig7 original deployment becomes plannable with dedicated global
    acceptors: partition rings and the global ring then share replicas
    (learners) only, so `shared_learners` splits them with a merge stage."""
    from repro.core import AtomicMulticast
    from repro.core.config import global_config
    from repro.kvstore.service import MRPStoreService
    from repro.sim.topology import EC2_REGIONS, ec2_global

    regions = list(EC2_REGIONS[:2])
    config = global_config()
    system = AtomicMulticast(topology=ec2_global(regions), config=config, seed=1)
    service = MRPStoreService(
        system,
        partition_groups=[0, 1],
        acceptors_per_partition=3,
        replicas_per_partition=1,
        site_for_partition={0: regions[0], 1: regions[1]},
        global_ring_id=50,
        dedicated_global_acceptors=True,
        config=config,
    )
    assert [f.name for f in service.global_frontends] == ["kvg-node0", "kvg-node1"]
    replicas = [r.name for r in service.all_replicas()]
    ring_members = {
        group: [f.name for f in service.frontends[group]]
        + [r.name for r in service.replicas[group]]
        for group in (0, 1)
    }
    ring_members[50] = [f.name for f in service.global_frontends] + replicas
    # Without the merge-stage declaration the global ring fuses everything.
    assert plan_shards(ring_members, workers=3).shard_count == 1
    plan = plan_shards(ring_members, workers=3, shared_learners=replicas)
    assert plan.shard_count == 3
    assert plan.merge_learners == {
        "kv0-replica0": (0, 50),
        "kv1-replica0": (1, 50),
    }


def test_shared_learner_whose_rings_co_locate_needs_no_merge():
    # Rings 0 and 1 share acceptor "a": one component, so the learner simply
    # lives in that shard and the plan records no merge stage.
    plan = plan_shards(
        {0: ["a", "x", "shared"], 1: ["a", "y", "shared"], 2: ["z"]},
        workers=2,
        shared_learners=["shared"],
    )
    assert plan.merge_learners == {}
    assert plan.actor_shard["shared"] == plan.shard_of_ring(0) == plan.shard_of_ring(1)


def test_lookahead_from_topology():
    topo = wan_topology()
    rings = {0: ["pa"], 1: ["pb"], 2: ["pc"]}
    sites = {"pa": "a", "pb": "b", "pc": "c"}
    plan = plan_shards(rings, workers=3, actor_sites=sites, topology=topo)
    assert plan.lookahead == pytest.approx(0.010)  # the a<->b link is tightest


def test_lookahead_none_without_topology():
    plan = plan_shards({0: ["a"], 1: ["b"]}, workers=2)
    assert plan.lookahead is None


def test_colocated_shards_rejected_for_windowed_execution():
    topo = wan_topology()
    rings = {0: ["pa"], 1: ["pb"]}
    sites = {"pa": "a", "pb": "a"}  # both shards on site "a"
    with pytest.raises(ValueError, match="co-located"):
        plan_shards(rings, workers=2, actor_sites=sites, topology=topo)


def test_cross_shard_subscription_rejected():
    subs = GroupSubscriptions()
    subs.subscribe("observer", 0)
    subs.subscribe("observer", 1)
    # The ring membership alone makes 0 and 1 disjoint, but the subscription
    # table says some learner merges both: the plan must refuse.
    with pytest.raises(ValueError, match="co-subscribed groups must be co-located"):
        plan_shards({0: ["a"], 1: ["b"]}, workers=2, subscriptions=subs)


def test_conservative_lookahead_ignores_same_shard_pairs():
    topo = wan_topology()
    lookahead = conservative_lookahead(
        topo,
        actor_sites={"p1": "a", "p2": "b", "p3": "c"},
        actor_shard={"p1": 0, "p2": 0, "p3": 1},
    )
    # Only shard 0 (a, b) vs shard 1 (c) pairs count: min(b-c, a-c) = 0.020.
    assert lookahead == pytest.approx(0.020)
