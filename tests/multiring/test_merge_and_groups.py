"""Tests of the deterministic merge, group subscriptions and rate leveling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.multiring.group import GroupSubscriptions, MulticastGroup
from repro.multiring.merge import DeterministicMerger, replay_streams
from repro.multiring.ratelevel import GLOBAL_RATE_LEVELER, LOCAL_RATE_LEVELER, RateLeveler
from repro.paxos.messages import ProposalValue, SKIP
from repro.ringpaxos.coordinator import PackedValues


def value(payload, size=10):
    return ProposalValue(payload=payload, size_bytes=size)


def skip():
    return ProposalValue(payload=SKIP, size_bytes=0)


class TestDeterministicMerger:
    def _merger(self, groups, m=1):
        out = []
        merger = DeterministicMerger(groups, messages_per_round=m,
                                     on_deliver=lambda g, i, v: out.append((g, v.payload)))
        return merger, out

    def test_single_group_passthrough(self):
        merger, out = self._merger([0])
        for i in range(5):
            merger.offer(0, i, value(i))
        assert [p for _, p in out] == [0, 1, 2, 3, 4]

    def test_round_robin_order_with_m_equal_one(self):
        merger, out = self._merger([0, 1])
        merger.offer(0, 0, value("a0"))
        merger.offer(0, 1, value("a1"))
        merger.offer(1, 0, value("b0"))
        merger.offer(1, 1, value("b1"))
        assert [p for _, p in out] == ["a0", "b0", "a1", "b1"]

    def test_m_greater_than_one_consumes_m_per_ring(self):
        merger, out = self._merger([0, 1], m=2)
        for i in range(4):
            merger.offer(0, i, value(f"a{i}"))
            merger.offer(1, i, value(f"b{i}"))
        assert [p for _, p in out] == ["a0", "a1", "b0", "b1", "a2", "a3", "b2", "b3"]

    def test_stalls_until_slow_ring_produces(self):
        merger, out = self._merger([0, 1])
        merger.offer(0, 0, value("a0"))
        merger.offer(0, 1, value("a1"))
        assert [p for _, p in out] == ["a0"]  # waiting for ring 1
        merger.offer(1, 0, value("b0"))
        assert [p for _, p in out] == ["a0", "b0", "a1"]

    def test_skips_unblock_but_deliver_nothing(self):
        merger, out = self._merger([0, 1])
        merger.offer(0, 0, value("a0"))
        merger.offer(1, 0, skip())
        merger.offer(0, 1, value("a1"))
        merger.offer(1, 1, skip())
        assert [p for _, p in out] == ["a0", "a1"]
        assert merger.skipped_count == 2
        assert merger.delivered_count == 2

    def test_merge_order_iterates_groups_by_ascending_id(self):
        merger, out = self._merger([7, 3])
        merger.offer(7, 0, value("high"))
        merger.offer(3, 0, value("low"))
        assert [p for _, p in out] == ["low", "high"]

    def test_packed_values_unpack_in_order(self):
        merger, out = self._merger([0])
        packed = ProposalValue(
            payload=PackedValues(values=[value("x"), value("y")]), size_bytes=20
        )
        merger.offer(0, 0, packed)
        assert [p for _, p in out] == ["x", "y"]
        assert merger.delivered_count == 2

    def test_unsubscribed_group_rejected(self):
        merger, _ = self._merger([0])
        with pytest.raises(KeyError):
            merger.offer(1, 0, value("x"))

    def test_round_boundary_tracking(self):
        merger, _ = self._merger([0, 1])
        assert merger.is_round_boundary()
        merger.offer(0, 0, value("a"))
        assert not merger.is_round_boundary()
        merger.offer(1, 0, value("b"))
        assert merger.is_round_boundary()

    def test_fast_forward_drops_consumed_positions(self):
        merger, out = self._merger([0, 1])
        merger.offer(0, 0, value("old-a"))
        merger.offer(0, 1, value("new-a"))
        merger.fast_forward({0: 0, 1: -1})
        merger.offer(1, 0, value("b0"))
        assert [p for _, p in out] == ["old-a", "new-a", "b0"]

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            DeterministicMerger([])
        with pytest.raises(ValueError):
            DeterministicMerger([0], messages_per_round=0)

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_interleaving_invariance(self, data):
        """Property: the delivery order is independent of offer interleaving."""
        group_count = data.draw(st.integers(min_value=1, max_value=3))
        per_group = data.draw(st.integers(min_value=1, max_value=6))
        groups = list(range(group_count))

        def feed(order):
            merger, out = self._merger(groups)
            for g, i in order:
                merger.offer(g, i, value(f"g{g}i{i}"))
            return [p for _, p in out]

        base_order = [(g, i) for i in range(per_group) for g in groups]
        shuffled = data.draw(st.permutations(base_order))
        # Per-ring instance order must be preserved when feeding, as the ring
        # learner guarantees: stable-sort the permutation per group.
        per_group_sorted = []
        seen = {g: 0 for g in groups}
        for g, _ in shuffled:
            per_group_sorted.append((g, seen[g]))
            seen[g] += 1
        assert feed(base_order) == feed(per_group_sorted)


class TestReplayStreams:
    """The merge stage: offline replay of recorded per-ring streams."""

    def test_replay_matches_online_merger(self):
        """Replay equals an online merger fed the same streams, any interleaving."""
        streams = {
            0: [(0, value("a0")), (1, value("a1")), (2, skip()), (3, value("a3"))],
            2: [(0, skip()), (1, value("c1")), (2, value("c2"))],
        }
        replayed = [
            (g, v.payload) for g, _, v in replay_streams(streams, messages_per_round=2)
        ]
        # Online reference: interleave offers the other way around.
        out = []
        merger = DeterministicMerger([0, 2], messages_per_round=2,
                                     on_deliver=lambda g, i, v: out.append((g, v.payload)))
        for instance, v in streams[2]:
            merger.offer(2, instance, v)
        for instance, v in streams[0]:
            merger.offer(0, instance, v)
        assert replayed == out
        # Round-robin shape: M=2 from ring 0, then M=2 from ring 2 (skips
        # consumed silently but counted).
        assert replayed == [(0, "a0"), (0, "a1"), (2, "c1"), (0, "a3"), (2, "c2")]

    def test_replay_unpacks_batches_and_counts_skips(self):
        batch = ProposalValue(payload=PackedValues([value("x"), value("y")]), size_bytes=20)
        streams = {
            1: [(0, batch), (1, skip())],
            5: [(0, value("z"))],
        }
        replayed = [(g, v.payload) for g, _, v in replay_streams(streams)]
        assert replayed == [(1, "x"), (1, "y"), (5, "z")]

    def test_replay_callback_fires_per_delivery(self):
        seen = []
        replay_streams(
            {0: [(0, value("m"))]},
            on_deliver=lambda g, i, v: seen.append((g, i, v.payload)),
        )
        assert seen == [(0, 0, "m")]

    def test_replay_requires_a_stream(self):
        with pytest.raises(ValueError):
            replay_streams({})

    def test_replay_stalls_on_exhausted_ring(self):
        """An idle ring with no recorded skips stalls the round-robin — the
        same position an online merger would wait at."""
        streams = {0: [(0, value("a0")), (1, value("a1"))], 1: [(0, value("b0"))]}
        replayed = [(g, v.payload) for g, _, v in replay_streams(streams)]
        assert replayed == [(0, "a0"), (1, "b0"), (0, "a1")]


class TestGroupSubscriptions:
    def test_subscribe_and_query(self):
        subs = GroupSubscriptions()
        subs.subscribe("r1", 0)
        subs.subscribe("r1", 1)
        subs.subscribe("r2", 0)
        assert subs.groups_of("r1") == [0, 1]
        assert subs.subscribers_of(0) == ["r1", "r2"]
        assert subs.partition_of("r1") == frozenset({0, 1})

    def test_partition_peers_require_identical_subscriptions(self):
        subs = GroupSubscriptions()
        for name in ("a", "b"):
            subs.subscribe(name, 0)
            subs.subscribe(name, 1)
        subs.subscribe("c", 0)
        assert subs.partition_peers("a") == ["b"]
        assert subs.partition_peers("c") == []

    def test_partitions_map(self):
        subs = GroupSubscriptions()
        subs.subscribe("a", 0)
        subs.subscribe("b", 0)
        subs.subscribe("c", 1)
        partitions = subs.partitions()
        assert partitions[frozenset({0})] == ["a", "b"]
        assert partitions[frozenset({1})] == ["c"]

    def test_unsubscribe(self):
        subs = GroupSubscriptions()
        subs.subscribe("a", 0)
        subs.unsubscribe("a", 0)
        assert subs.groups_of("a") == []
        assert subs.processes() == []

    def test_multicast_group_validation(self):
        with pytest.raises(ValueError):
            MulticastGroup(group_id=-1, ring_id=0)


class TestRateLeveler:
    def test_expected_per_interval(self):
        assert LOCAL_RATE_LEVELER.expected_per_interval == pytest.approx(45.0)
        assert GLOBAL_RATE_LEVELER.expected_per_interval == pytest.approx(40.0)

    def test_skips_needed(self):
        leveler = RateLeveler(interval=0.010, max_rate=1000.0)
        assert leveler.skips_needed(0) == 10
        assert leveler.skips_needed(4) == 6
        assert leveler.skips_needed(100) == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RateLeveler(interval=0.0)
        with pytest.raises(ValueError):
            RateLeveler(max_rate=-1.0)
