"""Tests of MRP-Store partitioning and the in-memory key-value state machine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.kvstore.partitioning import HashPartitioner, RangePartitioner
from repro.kvstore.store import KeyValueStore


class TestHashPartitioner:
    def test_routing_is_deterministic_and_in_range(self):
        partitioner = HashPartitioner([0, 1, 2])
        for key in ("a", "b", "user123", ""):
            group = partitioner.group_for_key(key)
            assert group in (0, 1, 2)
            assert partitioner.group_for_key(key) == group

    def test_scan_hits_every_partition(self):
        partitioner = HashPartitioner([0, 1, 2])
        assert partitioner.groups_for_range("a", "b") == [0, 1, 2]

    def test_keys_spread_over_partitions(self):
        partitioner = HashPartitioner([0, 1, 2, 3])
        groups = {partitioner.group_for_key(f"key{i}") for i in range(200)}
        assert groups == {0, 1, 2, 3}

    def test_requires_groups(self):
        with pytest.raises(ValueError):
            HashPartitioner([])

    @given(st.text(max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_any_key_is_routable(self, key):
        partitioner = HashPartitioner([5, 9])
        assert partitioner.group_for_key(key) in (5, 9)


class TestRangePartitioner:
    def test_routing_by_split_points(self):
        partitioner = RangePartitioner([10, 11, 12], splits=["g", "p"])
        assert partitioner.group_for_key("alpha") == 10
        assert partitioner.group_for_key("g") == 11
        assert partitioner.group_for_key("monkey") == 11
        assert partitioner.group_for_key("zebra") == 12

    def test_scan_only_touches_covering_partitions(self):
        partitioner = RangePartitioner([10, 11, 12], splits=["g", "p"])
        assert partitioner.groups_for_range("a", "c") == [10]
        assert partitioner.groups_for_range("a", "h") == [10, 11]
        assert partitioner.groups_for_range("h", "z") == [11, 12]
        assert partitioner.groups_for_range("z", "h") == [11, 12]  # reversed bounds

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            RangePartitioner([], splits=[])
        with pytest.raises(ValueError):
            RangePartitioner([0, 1], splits=[])
        with pytest.raises(ValueError):
            RangePartitioner([0, 1, 2], splits=["p", "g"])

    def test_partition_count(self):
        assert RangePartitioner([1, 2], splits=["m"]).partition_count == 2


class TestKeyValueStore:
    def test_insert_read_update_delete(self):
        store = KeyValueStore()
        assert store.insert("k1", "v1", 100)
        assert store.read("k1").value == "v1"
        assert store.update("k1", "v2", 150)
        assert store.read("k1").size_bytes == 150
        assert store.delete("k1")
        assert store.read("k1") is None
        assert len(store) == 0

    def test_update_missing_key_fails(self):
        store = KeyValueStore()
        assert not store.update("missing", "v", 10)

    def test_delete_missing_key_fails(self):
        assert not KeyValueStore().delete("missing")

    def test_insert_is_upsert(self):
        store = KeyValueStore()
        store.insert("k", "a", 10)
        store.insert("k", "b", 20)
        assert len(store) == 1
        assert store.size_bytes == 20

    def test_scan_returns_sorted_range_inclusive(self):
        store = KeyValueStore()
        for key in ("b", "a", "d", "c", "e"):
            store.insert(key, key.upper(), 10)
        result = store.scan("b", "d")
        assert [k for k, _ in result] == ["b", "c", "d"]
        assert [k for k, _ in store.scan("d", "b")] == ["b", "c", "d"]

    def test_scan_with_limit(self):
        store = KeyValueStore()
        for i in range(10):
            store.insert(f"k{i}", i, 10)
        assert len(store.scan("k0", "k9", limit=3)) == 3

    def test_size_accounting(self):
        store = KeyValueStore()
        store.insert("a", None, 100)
        store.insert("b", None, 200)
        store.update("a", None, 50)
        store.delete("b")
        assert store.size_bytes == 50

    def test_snapshot_and_restore(self):
        store = KeyValueStore()
        for i in range(5):
            store.insert(f"k{i}", i, 10)
        snapshot = store.snapshot()
        store.update("k0", 99, 10)
        store.delete("k1")
        other = KeyValueStore()
        other.restore(snapshot)
        assert len(other) == 5
        assert other.read("k0").value == 0
        assert list(other.keys()) == sorted(other.keys())

    def test_clear(self):
        store = KeyValueStore()
        store.insert("a", 1, 10)
        store.clear()
        assert len(store) == 0 and store.size_bytes == 0

    @given(st.lists(st.tuples(st.sampled_from("abcdef"), st.integers(0, 3)), max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_sorted_keys_invariant(self, operations):
        """The sorted-key index always matches the dictionary contents."""
        store = KeyValueStore()
        for key, op in operations:
            if op == 0:
                store.insert(key, None, 10)
            elif op == 1:
                store.update(key, None, 20)
            elif op == 2:
                store.delete(key)
            else:
                store.read(key)
            assert sorted(store.keys()) == list(store.keys())
            assert set(store.keys()) == {k for k in "abcdef" if k in store}
