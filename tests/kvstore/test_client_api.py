"""Tests of the MRP-Store client API (Table 1) command construction and routing."""

import pytest

from repro.core.client import Command
from repro.kvstore.client import MRPStoreCommands, kv_request_factory
from repro.kvstore.partitioning import HashPartitioner, RangePartitioner


@pytest.fixture
def commands():
    return MRPStoreCommands(RangePartitioner([0, 1, 2], splits=["h", "p"]))


class TestTable1Operations:
    def test_read_routes_to_owning_partition(self, commands):
        command = commands.read("apple")
        assert command.op == "read"
        assert command.group_id == 0
        assert command.args == ("apple",)

    def test_update_insert_delete_carry_value_size(self, commands):
        update = commands.update("zebra", value_size=1024)
        assert update.op == "update" and update.group_id == 2
        assert update.size_bytes > 1024
        insert = commands.insert("kiwi", value_size=100)
        assert insert.op == "insert" and insert.group_id == 1
        delete = commands.delete("apple")
        assert delete.op == "delete" and delete.size_bytes < update.size_bytes

    def test_scan_addresses_only_covering_partitions(self, commands):
        scan = commands.scan("a", "j")
        assert [c.group_id for c in scan] == [0, 1]
        assert all(c.op == "scan" for c in scan)

    def test_scan_under_hash_partitioning_addresses_all(self):
        hash_commands = MRPStoreCommands(HashPartitioner([0, 1, 2]))
        scan = hash_commands.scan("a", "b")
        assert [c.group_id for c in scan] == [0, 1, 2]


class TestRequestFactory:
    def _factory(self, commands):
        operations = iter([
            ("read", "apple", 0, None),
            ("update", "zebra", 512, None),
            ("insert", "kiwi", 512, None),
            ("delete", "apple", 0, None),
            ("read-modify-write", "melon", 512, None),
            ("scan", "a", 0, "z"),
        ])
        return kv_request_factory(commands, lambda seq: next(operations))

    def test_factory_translates_each_operation(self, commands):
        factory = self._factory(commands)
        read_cmds, await_groups = factory(0)
        assert len(read_cmds) == 1 and read_cmds[0].op == "read"
        assert await_groups == [0]

        update_cmds, _ = factory(1)
        assert update_cmds[0].op == "update"
        insert_cmds, _ = factory(2)
        assert insert_cmds[0].op == "insert"
        delete_cmds, _ = factory(3)
        assert delete_cmds[0].op == "delete"

        rmw_cmds, rmw_groups = factory(4)
        assert [c.op for c in rmw_cmds] == ["read", "update"]
        assert len(rmw_groups) == 1

        scan_cmds, scan_groups = factory(5)
        assert len(scan_cmds) == 3
        assert sorted(scan_groups) == [0, 1, 2]

    def test_unknown_operation_rejected(self, commands):
        factory = kv_request_factory(commands, lambda seq: ("explode", "k", 0, None))
        with pytest.raises(ValueError):
            factory(0)
