"""Tests of the MRP-Store replica state machine and the service builder."""

import random

import pytest

from repro.core import AtomicMulticast, MultiRingConfig
from repro.core.client import Command
from repro.kvstore import HashPartitioner, MRPStoreReplica, MRPStoreService, RangePartitioner
from repro.workloads import preload_keys, read_mostly_workload, update_only_workload


def make_replica():
    config = MultiRingConfig(rate_interval=None, checkpoint_interval=None, trim_interval=None)
    system = AtomicMulticast(seed=1, config=config)
    return MRPStoreReplica(system.env, "r0", config=config)


class TestReplicaStateMachine:
    def test_apply_insert_read_update_delete_scan(self):
        replica = make_replica()
        assert replica.apply_command(0, Command(op="insert", args=("k", "v", 100)))["inserted"]
        assert replica.apply_command(0, Command(op="read", args=("k",)))["found"]
        assert replica.apply_command(0, Command(op="update", args=("k", "v2", 150)))["updated"]
        scan = replica.apply_command(0, Command(op="scan", args=("a", "z", None)))
        assert scan["count"] == 1 and scan["bytes"] == 150
        assert replica.apply_command(0, Command(op="delete", args=("k",)))["deleted"]
        assert not replica.apply_command(0, Command(op="read", args=("k",)))["found"]

    def test_unknown_operation_rejected(self):
        replica = make_replica()
        with pytest.raises(ValueError):
            replica.apply_command(0, Command(op="vacuum"))

    def test_snapshot_roundtrip(self):
        replica = make_replica()
        replica.apply_command(0, Command(op="insert", args=("k", "v", 100)))
        state, size = replica.snapshot_state()
        assert size >= 100
        replica.reset_state()
        assert replica.entry_count() == 0
        replica.install_state_snapshot(state)
        assert replica.entry_count() == 1


def build_store(partitions=2, global_ring=False, seed=3, partitioner=None):
    config = MultiRingConfig(rate_interval=0.005, max_rate=500.0,
                             checkpoint_interval=None, trim_interval=None)
    system = AtomicMulticast(seed=seed, config=config)
    service = MRPStoreService(
        system,
        partition_groups=list(range(partitions)),
        partitioner=partitioner,
        acceptors_per_partition=3,
        replicas_per_partition=2,
        global_ring_id=40 if global_ring else None,
        config=config,
    )
    return system, service


class TestServiceDeployment:
    def test_partition_map_is_published(self):
        system, service = build_store()
        assert system.coordination.get("kvstore/partition-map") is service.partitioner

    def test_preload_places_keys_on_the_owning_partition_only(self):
        system, service = build_store()
        service.preload(preload_keys(100))
        for group in service.groups:
            for replica in service.replicas[group]:
                for key in replica.store.keys():
                    assert service.partitioner.group_for_key(key) == group

    def test_replicas_of_a_partition_converge(self):
        system, service = build_store()
        service.preload(preload_keys(100))
        rng = random.Random(7)
        client = service.create_client("c", update_only_workload(rng, key_count=100), concurrency=4)
        system.start()
        system.run(until=2.0)
        assert client.completed > 50
        for group in service.groups:
            first, second = service.replicas[group]
            assert first.commands_applied == second.commands_applied

    def test_reads_and_scans_complete(self):
        partitioner = RangePartitioner([0, 1], splits=["m"])
        system, service = build_store(partitioner=partitioner)
        service.preload(preload_keys(50))
        rng = random.Random(9)

        def mixed(sequence):
            if sequence % 5 == 4:
                return ("scan", "key0000000000", 0, "key0000000049")
            return read_mostly_workload(rng, key_count=50)(sequence)

        client = service.create_client("c", mixed, concurrency=2)
        system.start()
        system.run(until=2.0)
        assert client.completed > 20

    def test_global_ring_orders_across_partitions(self):
        system, service = build_store(global_ring=True)
        assert service.global_ring_id == 40
        # every replica subscribes to its partition ring plus the global ring
        for group in service.groups:
            for replica in service.replicas[group]:
                assert set(replica.subscribed_groups()) == {group, 40}
        service.preload(preload_keys(60))
        rng = random.Random(11)
        client = service.create_client("c", update_only_workload(rng, key_count=60), concurrency=4)
        system.start()
        system.run(until=2.0)
        assert client.completed > 20

    def test_frontend_map_prefers_site(self):
        system, service = build_store()
        mapping = service.frontend_map()
        assert set(mapping) == set(service.groups)
        for group, name in mapping.items():
            assert name.startswith(f"kv{group}-node")

    def test_requires_at_least_one_partition(self):
        system = AtomicMulticast(seed=1)
        with pytest.raises(ValueError):
            MRPStoreService(system, partition_groups=[])
