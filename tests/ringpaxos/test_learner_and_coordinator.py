"""Tests of the per-ring learner ordering and the coordinator bookkeeping."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.paxos.messages import ProposalValue, SKIP
from repro.ringpaxos.coordinator import CoordinatorState, InstanceBatchPolicy, PackedValues
from repro.ringpaxos.learner import RingLearner


def value(payload, size=100):
    return ProposalValue(payload=payload, size_bytes=size)


class TestRingLearner:
    def _learner(self):
        out = []
        learner = RingLearner(0, lambda ring, instance, v: out.append((instance, v.payload)))
        return learner, out

    def test_emits_in_instance_order(self):
        learner, out = self._learner()
        learner.observe_value(0, value("a"))
        learner.observe_value(1, value("b"))
        learner.observe_decision(1, value("b"))
        assert out == []  # instance 0 not decided yet
        learner.observe_decision(0, value("a"))
        assert [i for i, _ in out] == [0, 1]

    def test_decision_without_value_waits_for_it(self):
        learner, out = self._learner()
        learner.observe_decision(0, None)
        assert out == []
        learner.supply_missing_value(0, value("late"))
        assert out == [(0, "late")]

    def test_value_seen_earlier_is_used_for_bare_decisions(self):
        learner, out = self._learner()
        learner.observe_value(0, value("x"))
        learner.observe_decision(0, None)
        assert out == [(0, "x")]

    def test_duplicate_decisions_ignored(self):
        learner, out = self._learner()
        learner.observe_decision(0, value("a"))
        learner.observe_decision(0, value("a"))
        assert len(out) == 1

    def test_skip_counting(self):
        learner, out = self._learner()
        learner.observe_decision(0, ProposalValue(payload=SKIP, size_bytes=0))
        learner.observe_decision(1, value("real"))
        assert learner.emitted_count == 2
        assert learner.skipped_count == 1

    def test_fast_forward_skips_old_instances(self):
        learner, out = self._learner()
        learner.fast_forward(4)
        learner.observe_decision(2, value("old"))
        learner.observe_decision(5, value("new"))
        assert out == [(5, "new")]
        assert learner.next_to_emit == 6

    def test_inject_decided_for_recovery(self):
        learner, out = self._learner()
        learner.fast_forward(1)
        learner.inject_decided(2, value("recovered"))
        learner.inject_decided(3, value("recovered2"))
        assert [i for i, _ in out] == [2, 3]

    @given(st.permutations(list(range(8))))
    @settings(max_examples=40, deadline=None)
    def test_any_decision_arrival_order_yields_instance_order(self, order):
        learner, out = self._learner()
        for instance in order:
            learner.observe_decision(instance, value(instance))
        assert [i for i, _ in out] == list(range(8))


class TestCoordinatorState:
    def test_phase1_quorum_gate(self):
        coordinator = CoordinatorState(ring_id=0)
        coordinator.enqueue(value("v"))
        assert coordinator.next_assignments() == []
        assert not coordinator.record_promise("a0", quorum=2)
        assert coordinator.record_promise("a1", quorum=2)
        assignments = coordinator.next_assignments()
        assert len(assignments) == 1
        assert assignments[0][0] == 0

    def test_unbatched_assignment_is_one_instance_per_value(self):
        coordinator = CoordinatorState(ring_id=0)
        coordinator.record_promise("a0", quorum=1)
        for i in range(3):
            coordinator.enqueue(value(i))
        assignments = coordinator.next_assignments()
        assert [i for i, _ in assignments] == [0, 1, 2]
        assert coordinator.total_proposed == 3

    def test_batched_assignment_packs_values(self):
        policy = InstanceBatchPolicy(enabled=True, max_bytes=250)
        coordinator = CoordinatorState(ring_id=0, batch_policy=policy)
        coordinator.record_promise("a0", quorum=1)
        for i in range(5):
            coordinator.enqueue(value(i, size=100))
        assignments = coordinator.next_assignments()
        assert len(assignments) < 5
        packed = assignments[0][1]
        assert isinstance(packed.payload, PackedValues)
        assert packed.size_bytes <= 300

    def test_rate_leveling_skips(self):
        class Policy:
            expected_per_interval = 10

        coordinator = CoordinatorState(ring_id=0, rate_policy=Policy())
        coordinator.record_promise("a0", quorum=1)
        coordinator.enqueue(value("v"))
        coordinator.next_assignments()
        skips = coordinator.skips_for_interval()
        assert skips == 9
        first, last = coordinator.allocate_skips(skips)
        assert last - first + 1 == 9
        assert coordinator.total_skipped == 9
        # a fresh interval with no proposals wants the full quota
        assert coordinator.skips_for_interval() == 10

    def test_no_rate_policy_means_no_skips(self):
        coordinator = CoordinatorState(ring_id=0)
        assert coordinator.skips_for_interval() == 0

    def test_allocate_skips_requires_positive_count(self):
        coordinator = CoordinatorState(ring_id=0)
        with pytest.raises(ValueError):
            coordinator.allocate_skips(0)

    def test_skip_value_is_skip(self):
        assert CoordinatorState.skip_value().is_skip()
