"""Dispatch-table exhaustiveness differential.

``RingNode.handle`` used to select handlers with a long isinstance chain;
it now uses a precomputed ``type(message) -> bound method`` table (with an
MRO-walking fallback for subclasses).  These tests keep the old chain alive
as a behavioural oracle: one instance of every registered message class is
fed through both selectors on identically prepared twin rings, and handler
selection and return values must match — including the unknown-message
fallthrough and the subclass path the MRO fallback serves.

The service plane (``StateMachineReplica.on_service_message``) got the same
treatment and is differenced against its old chain below.
"""

from __future__ import annotations

from typing import Optional

from repro.core.amcast import AtomicMulticast
from repro.core.smr import StateMachineReplica
from repro.multiring.process import MultiRingProcess
from repro.paxos.messages import (
    CheckpointReply,
    CheckpointRequest,
    Decision,
    Phase1A,
    Phase1B,
    Phase2Ring,
    ProposalValue,
    RetransmitRequest,
    RetransmitReply,
    TrimCommand,
    TrimQuery,
    TrimReport,
)
from repro.sim.topology import single_datacenter


def _value(payload="cmd", size=64, proposer="p0", pid=7):
    return ProposalValue(payload=payload, size_bytes=size, proposer=proposer, proposal_id=pid)


#: One representative instance per registered message class.  Instance
#: numbers sit far above anything the warm-up run decides so the handlers
#: exercise their real code paths without colliding with live state.
MESSAGE_FACTORIES = {
    Phase2Ring: lambda: Phase2Ring(
        ring_id=0, instance=990_001, ballot=1, value=_value(), votes=("p9",), origin="p9"
    ),
    Decision: lambda: Decision(
        ring_id=0, instance=990_002, value=_value(), origin="p9", carries_value=True
    ),
    Phase1A: lambda: Phase1A(ring_id=0, ballot=0, from_instance=0, to_instance=10),
    Phase1B: lambda: Phase1B(ring_id=0, ballot=1, from_instance=0, to_instance=10),
    RetransmitRequest: lambda: RetransmitRequest(
        ring_id=0, from_instance=0, to_instance=2, requester="p0"
    ),
    RetransmitReply: lambda: RetransmitReply(ring_id=0, decided=[], reason="recovery"),
    TrimQuery: lambda: TrimQuery(ring_id=0),
    TrimReport: lambda: TrimReport(ring_id=0, replica="p9", safe_instance=-1),
    TrimCommand: lambda: TrimCommand(ring_id=0, up_to_instance=-1),
}

#: The pre-table isinstance chain, in its original order.  ``ValueForward``
#: is registered in ``RingNode.HANDLERS`` too but needs a proposer-side
#: pending entry to do anything; selection is still differenced via the
#: table below.
_ORACLE_CHAIN = (
    (Phase2Ring, "_handle_phase2"),
    (Decision, "_handle_decision"),
    (Phase1A, "_handle_phase1a"),
    (Phase1B, "_handle_phase1b"),
    (RetransmitRequest, "_handle_retransmit_request"),
    (RetransmitReply, "_handle_retransmit_reply"),
    (TrimReport, "_handle_trim_report"),
    (TrimCommand, "_handle_trim_command"),
)


def _oracle_select(message) -> Optional[str]:
    for cls, name in _ORACLE_CHAIN:
        if isinstance(message, cls):
            return name
    return None


def _oracle_handle(node, sender: str, message) -> bool:
    """The old ``RingNode.handle``: CPU charge, isinstance chain, False fallthrough.

    ``TrimQuery`` was intercepted by the hosting process before the old
    chain ran, so the chain itself treated it as unknown (``False``).
    """
    node.host.cpu.charge_message(node._cpu_model, getattr(message, "size_bytes", 0))
    name = _oracle_select(message)
    if name is None:
        return False
    return getattr(node, name)(sender, message)


def _table_select(node, message) -> Optional[str]:
    handler = node._handlers.get(message.__class__)
    if handler is None:
        handler = node._resolve_handler(message.__class__)
    return None if handler is None else handler.__name__


def _build_ring(seed=7):
    system = AtomicMulticast(topology=single_datacenter(), seed=seed)
    procs = [MultiRingProcess(system.env, f"p{i}") for i in range(3)]
    system.create_ring(0, [(p.name, "pal") for p in procs])
    system.start()
    system.run(until=0.05)
    coordinator = system.ring(0).coordinator
    follower = next(p for p in procs if p.name != coordinator)
    return system, follower.node(0)


class TestRingNodeDispatchDifferential:
    def test_every_registered_class_selects_like_the_old_chain(self):
        _, node = _build_ring()
        for cls in MESSAGE_FACTORIES:
            message = MESSAGE_FACTORIES[cls]()
            oracle = _oracle_select(message)
            table = _table_select(node, message)
            if cls is TrimQuery:
                # The old chain never saw TrimQuery (the hosting process
                # answered it first); the table carries an explicit no-op
                # entry so unknown-class resolution stays a cold path.
                assert table == "_handle_trim_query"
            else:
                assert table == oracle, f"{cls.__name__}: table {table} != chain {oracle}"

    def test_table_registers_every_message_class(self):
        from repro.ringpaxos.node import RingNode

        registered = set(RingNode.HANDLERS)
        assert set(MESSAGE_FACTORIES).issubset(registered)

    def test_return_values_match_the_old_chain(self):
        # Twin rings prepared identically (same seed): feeding the same
        # message to the shipped dispatcher on one and the old chain on the
        # other must produce the same return value for every class.
        for cls, factory in MESSAGE_FACTORIES.items():
            _, table_node = _build_ring()
            _, oracle_node = _build_ring()
            sender = "p0"
            assert table_node.handle(sender, factory()) == _oracle_handle(
                oracle_node, sender, factory()
            ), f"return value diverged for {cls.__name__}"

    def test_subclass_resolves_through_mro_fallback(self):
        class TracingDecision(Decision):
            """A subclass absent from HANDLERS: resolved via the MRO walk."""

        _, node = _build_ring()
        message = TracingDecision(
            ring_id=0, instance=990_050, value=_value(), origin="p9", carries_value=True
        )
        assert _table_select(node, message) == _oracle_select(message) == "_handle_decision"
        assert node.handle("p0", message) is True
        # The resolution is cached: the subclass now hits the table directly.
        assert node._handlers[TracingDecision].__name__ == "_handle_decision"

    def test_unknown_message_falls_through_exactly_like_the_old_chain(self):
        class Mystery:
            ring_id = 0
            size_bytes = 10

        _, table_node = _build_ring()
        _, oracle_node = _build_ring()
        assert _table_select(table_node, Mystery()) is None
        assert table_node.handle("p0", Mystery()) is False
        assert _oracle_handle(oracle_node, "p0", Mystery()) is False

    def test_unknown_ring_message_reaches_service_layer(self):
        class Mystery:
            ring_id = 0
            size_bytes = 10

        system, node = _build_ring()
        host = node.host
        seen = []
        host.on_service_message = lambda sender, message: seen.append((sender, message))
        mystery = Mystery()
        host.on_message("p9", mystery)
        assert seen == [("p9", mystery)]


class TestServiceDispatchDifferential:
    @staticmethod
    def _oracle_service_select(message) -> Optional[str]:
        # The old StateMachineReplica.on_service_message chain.
        if isinstance(message, CheckpointRequest):
            return "_handle_checkpoint_request"
        if isinstance(message, CheckpointReply):
            return "_handle_checkpoint_reply"
        if isinstance(message, RetransmitReply):
            return "_handle_retransmit_reply"
        return None

    def test_selection_matches_old_chain(self):
        system = AtomicMulticast(topology=single_datacenter(), seed=3)
        replica = StateMachineReplica(system.env, "r0")
        cases = [
            CheckpointRequest(requester="r1"),
            CheckpointReply(replica="r1"),
            RetransmitReply(ring_id=0),
            TrimQuery(ring_id=0),  # not service-plane: falls to client traffic
        ]
        for message in cases:
            oracle = self._oracle_service_select(message)
            handler = replica._service_handlers.get(message.__class__)
            table = None if handler is None else handler.__name__
            assert table == oracle, f"{type(message).__name__}: {table} != {oracle}"

    def test_unregistered_message_reaches_client_hook(self):
        system = AtomicMulticast(topology=single_datacenter(), seed=3)
        replica = StateMachineReplica(system.env, "r0")
        seen = []
        replica.on_client_message = lambda sender, message: seen.append(message)
        payload = object()
        replica.on_service_message("c1", payload)
        assert seen == [payload]
