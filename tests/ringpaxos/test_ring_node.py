"""Integration tests of the Ring Paxos node running on the simulated network."""

import pytest

from repro.core import AtomicMulticast, MultiRingConfig
from repro.sim.disk import StorageMode

from tests.conftest import RecordingProcess


def build_ring(storage_mode=StorageMode.IN_MEMORY, members=3, roles="pal", seed=1,
               batching=False):
    config = MultiRingConfig(
        storage_mode=storage_mode,
        batching_enabled=batching,
        rate_interval=None,
        checkpoint_interval=None,
        trim_interval=None,
    )
    system = AtomicMulticast(seed=seed, config=config)
    processes = [RecordingProcess(system.env, f"n{i}") for i in range(members)]
    system.create_ring(0, [(p.name, roles) for p in processes])
    system.start()
    return system, processes


class TestBasicOrdering:
    def test_all_learners_deliver_everything_in_the_same_order(self):
        system, processes = build_ring()
        for i in range(20):
            processes[i % 3].multicast(0, payload=f"v{i}", size_bytes=256)
        system.run(until=1.0)
        sequences = [p.delivered_payloads(0) for p in processes]
        assert len(sequences[0]) == 20
        assert sequences[0] == sequences[1] == sequences[2]

    def test_single_proposer_fifo_like_order(self):
        system, processes = build_ring()
        for i in range(10):
            processes[0].multicast(0, payload=i, size_bytes=64)
        system.run(until=1.0)
        assert processes[1].delivered_payloads(0) == list(range(10))

    def test_delivery_requires_majority_of_acceptors(self):
        # 3 acceptors: killing one (not the coordinator, not breaking the ring
        # path) after reconfiguration still lets values be ordered.
        system, processes = build_ring()
        system.crash_process("n2")
        system.remove_from_ring(0, "n2")
        processes[0].multicast(0, payload="after-failure", size_bytes=64)
        system.run(until=1.0)
        assert "after-failure" in processes[1].delivered_payloads(0)
        assert processes[2].delivered_payloads(0) == []

    def test_learner_only_member_also_delivers(self):
        config = MultiRingConfig(rate_interval=None, checkpoint_interval=None, trim_interval=None)
        system = AtomicMulticast(seed=2, config=config)
        acceptors = [RecordingProcess(system.env, f"a{i}") for i in range(3)]
        observer = RecordingProcess(system.env, "observer")
        members = [(a.name, "pal") for a in acceptors] + [(observer.name, "l")]
        system.create_ring(0, members)
        system.start()
        acceptors[0].multicast(0, payload="hello", size_bytes=64)
        system.run(until=1.0)
        assert observer.delivered_payloads(0) == ["hello"]

    def test_value_crosses_each_link_once(self):
        system, processes = build_ring()
        processes[0].multicast(0, payload="x", size_bytes=10_000)
        system.run(until=1.0)
        # 3 processes: the 10 KB value crosses at most 3 links (plus small
        # control traffic), so total bytes stay well under 5 copies.
        assert system.network.stats.bytes < 5 * 10_000


class TestStorageModes:
    @pytest.mark.parametrize("mode", [
        StorageMode.IN_MEMORY,
        StorageMode.ASYNC_SSD,
        StorageMode.ASYNC_HDD,
        StorageMode.SYNC_SSD,
        StorageMode.SYNC_HDD,
    ])
    def test_every_storage_mode_delivers(self, mode):
        system, processes = build_ring(storage_mode=mode)
        for i in range(5):
            processes[0].multicast(0, payload=i, size_bytes=512)
        system.run(until=2.0)
        assert processes[2].delivered_payloads(0) == list(range(5))

    def test_sync_mode_is_slower_than_memory(self):
        def first_delivery_time(mode):
            system, processes = build_ring(storage_mode=mode, seed=7)
            processes[0].multicast(0, payload="x", size_bytes=1024)
            system.run(until=2.0)
            assert processes[0].delivery_times, f"no delivery observed for {mode}"
            return processes[0].delivery_times[0]

        assert first_delivery_time(StorageMode.SYNC_HDD) > first_delivery_time(StorageMode.IN_MEMORY)

    def test_sync_ssd_is_faster_than_sync_hdd(self):
        def first_delivery_time(mode):
            system, processes = build_ring(storage_mode=mode, seed=9)
            processes[0].multicast(0, payload="x", size_bytes=4096)
            system.run(until=2.0)
            return processes[0].delivery_times[0]

        assert first_delivery_time(StorageMode.SYNC_SSD) < first_delivery_time(StorageMode.SYNC_HDD)


class TestBatching:
    def test_instance_batching_reduces_consensus_instances(self):
        system_plain, procs_plain = build_ring(batching=False, seed=3)
        for i in range(30):
            procs_plain[0].multicast(0, payload=i, size_bytes=512)
        system_plain.run(until=1.0)
        plain_instances = procs_plain[0].node(0).coordinator.total_proposed

        system_batch, procs_batch = build_ring(batching=True, seed=3)
        for i in range(30):
            procs_batch[0].multicast(0, payload=i, size_bytes=512)
        system_batch.run(until=1.0)
        batch_instances = procs_batch[0].node(0).coordinator.total_proposed

        assert procs_batch[1].delivered_payloads(0).count(0) == 1
        assert len(procs_batch[1].delivered_payloads(0)) == 30
        assert batch_instances <= plain_instances


class TestReconfiguration:
    def test_remove_and_readd_member(self):
        system, processes = build_ring()
        system.crash_process("n1")
        overlay = system.remove_from_ring(0, "n1")
        assert "n1" not in overlay.member_names
        processes[0].multicast(0, payload="while-down", size_bytes=64)
        system.run(until=0.5)
        assert "while-down" in processes[2].delivered_payloads(0)

        system.restart_process("n1")
        system.add_to_ring(0, ("n1", "pal"))
        processes[0].multicast(0, payload="after-rejoin", size_bytes=64)
        system.run(until=1.5)
        assert "after-rejoin" in processes[2].delivered_payloads(0)

    def test_removing_coordinator_elects_new_one(self):
        system, processes = build_ring()
        old_coordinator = system.ring(0).coordinator
        system.crash_process(old_coordinator)
        overlay = system.remove_from_ring(0, old_coordinator)
        assert overlay.coordinator != old_coordinator
        survivor = [p for p in processes if p.name != old_coordinator][0]
        survivor.multicast(0, payload="new-era", size_bytes=64)
        system.run(until=2.0)
        other = [p for p in processes if p.name not in (old_coordinator, survivor.name)][0]
        assert "new-era" in other.delivered_payloads(0)

    def test_cannot_install_overlay_excluding_self(self):
        system, processes = build_ring()
        from repro.net.ring import RingMember, RingOverlay
        foreign = RingOverlay(0, [RingMember(name="n0", acceptor=True)])
        with pytest.raises(ValueError):
            processes[1].node(0).update_overlay(foreign)


class TestTakeoverRepair:
    """A new coordinator finishes its crashed predecessor's instances."""

    def build_four_ring(self, seed=9):
        config = MultiRingConfig(
            rate_interval=0.005, max_rate=500.0,
            checkpoint_interval=None, trim_interval=None,
            gap_repair_interval=0.2,
        )
        system = AtomicMulticast(seed=seed, config=config)
        processes = [RecordingProcess(system.env, f"n{i}") for i in range(4)]
        system.create_ring(0, [(p.name, "pal") for p in processes])
        system.start()
        return system, processes

    def test_coordinator_crash_mid_stream_converges(self):
        system, processes = self.build_four_ring()
        coordinator = system.ring(0).coordinator
        sim = system.env.simulator
        survivors = [p for p in processes if p.name != coordinator]
        for i in range(30):
            sender = survivors[i % len(survivors)]
            sim.call_later(0.001 * i, lambda s=sender, i=i: s.alive and
                           s.multicast(0, payload=f"m{i}", size_bytes=64))
        sim.call_later(0.012, lambda: system.crash_process(coordinator))
        system.run(until=3.0)
        sequences = [p.delivered_payloads(0) for p in survivors]
        # every survivor delivers the same sequence, with no message sent
        # before or after the takeover lost by the ordering layer itself
        assert sequences[0] == sequences[1] == sequences[2]
        assert len(sequences[0]) >= 25

    def test_takeover_reproposal_prefers_highest_ballot(self):
        """Classic Paxos value selection: reported low-ballot accepted values
        must not beat the new coordinator's own higher-ballot accept."""
        from repro.paxos.messages import ProposalValue
        from repro.ringpaxos.coordinator import CoordinatorState

        system, processes = self.build_four_ring()
        system.run(until=0.1)
        coordinator = system.ring(0).coordinator
        node = [p for p in processes if p.name != coordinator][0].node(0)
        # make this node a takeover coordinator by hand
        node._become_coordinator = lambda: None  # keep overlay machinery out
        node.coordinator = CoordinatorState(0, ballot=7)
        node.coordinator.phase1_ready = True
        node._takeover_repair_pending = True
        stale = ProposalValue(payload="stale", size_bytes=8)
        newer = ProposalValue(payload="newer", size_bytes=8)
        instance = 10_000  # far beyond any live traffic
        node._takeover_accepted[instance] = (1, stale)
        node.acceptor.receive_phase2(instance, 5, newer)
        node.coordinator.ledger.observe_instance(instance)
        emitted = []
        node._emit_phase2 = lambda i, v, span: emitted.append((i, v.payload))
        node._takeover_repair()
        choices = dict(emitted)
        assert choices[instance] == "newer"
        # untouched holes below are skip-filled, not invented
        assert all(p == "newer" or i != instance for i, p in emitted)

    def test_takeover_skip_fills_undecided_holes(self):
        from repro.ringpaxos.coordinator import CoordinatorState

        system, processes = self.build_four_ring()
        system.run(until=0.05)
        node = processes[1].node(0)
        node.coordinator = CoordinatorState(0, ballot=9)
        node.coordinator.phase1_ready = True
        node._takeover_repair_pending = True
        hole = 20_000
        node.coordinator.ledger.observe_instance(hole)
        emitted = []
        node._emit_phase2 = lambda i, v, span: emitted.append((i, v))
        node._takeover_repair()
        values = {i: v for i, v in emitted}
        assert hole in values
        assert values[hole].is_skip()
