"""Tests of the coordination service (Zookeeper substitute)."""

import pytest

from repro.coord.registry import CoordinationService
from repro.net.ring import RingMember, RingOverlay


def overlay(ring_id=0, names=("a", "b", "c"), coordinator=None):
    members = [RingMember(name=n, proposer=True, acceptor=True, learner=True) for n in names]
    return RingOverlay(ring_id, members, coordinator=coordinator)


class TestRingRegistry:
    def test_register_and_fetch_ring(self):
        coord = CoordinationService()
        coord.register_ring(overlay())
        fetched = coord.ring(0)
        assert fetched.member_names == ["a", "b", "c"]
        assert coord.ring_ids() == [0]
        assert coord.coordinator_of(0) == "a"

    def test_unknown_ring_raises(self):
        with pytest.raises(KeyError):
            CoordinationService().ring(9)

    def test_ring_ids_sorted(self):
        coord = CoordinationService()
        coord.register_ring(overlay(ring_id=5))
        coord.register_ring(overlay(ring_id=1))
        assert coord.ring_ids() == [1, 5]

    def test_elect_coordinator_skips_failed_process(self):
        coord = CoordinationService()
        coord.register_ring(overlay())
        for name in ("a", "b", "c"):
            coord.register_process(name)
        coord.report_failure("a")
        new = coord.elect_coordinator(0, failed="a")
        assert new == "b"
        assert coord.coordinator_of(0) == "b"

    def test_elect_coordinator_without_candidates_raises(self):
        coord = CoordinationService()
        coord.register_ring(overlay(names=("a",)))
        coord.report_failure("a")
        with pytest.raises(RuntimeError):
            coord.elect_coordinator(0, failed="a")


class TestLiveness:
    def test_register_and_report_failure(self):
        coord = CoordinationService()
        coord.register_process("x")
        assert coord.is_alive("x")
        coord.report_failure("x")
        assert not coord.is_alive("x")

    def test_unknown_process_is_not_alive(self):
        assert not CoordinationService().is_alive("ghost")


class TestDataAndWatches:
    def test_put_get_exists_delete(self):
        coord = CoordinationService()
        coord.put("kvstore/partition-map", {"partitions": 3})
        assert coord.exists("kvstore/partition-map")
        assert coord.get("kvstore/partition-map") == {"partitions": 3}
        coord.delete("kvstore/partition-map")
        assert not coord.exists("kvstore/partition-map")
        assert coord.get("missing", default="d") == "d"

    def test_watch_fires_on_change(self):
        coord = CoordinationService()
        seen = []
        coord.watch("config/x", lambda path, value: seen.append((path, value)))
        coord.put("config/x", 1)
        coord.put("config/x", 2)
        coord.delete("config/x")
        assert seen == [("config/x", 1), ("config/x", 2), ("config/x", None)]

    def test_watch_on_ring_changes(self):
        coord = CoordinationService()
        seen = []
        coord.watch("ring/0", lambda path, value: seen.append(value.coordinator))
        coord.register_ring(overlay())
        coord.register_ring(overlay(coordinator="b"))
        assert seen == ["a", "b"]
