"""Tests of the stable-storage substrate: slot buffer, WAL and checkpoints."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.paxos.messages import ProposalValue
from repro.sim.actor import Environment
from repro.sim.disk import StorageMode
from repro.storage.checkpoint import CheckpointId, CheckpointStore
from repro.storage.slots import SlotBuffer, SlotFullError
from repro.storage.wal import WriteAheadLog


class TestSlotBuffer:
    def test_put_get_and_occupancy(self):
        buffer = SlotBuffer(slot_count=10, slot_size_bytes=1024)
        buffer.put(0, "v0", 100)
        buffer.put(1, "v1", 200)
        assert buffer.get(0).value == "v0"
        assert 1 in buffer
        assert len(buffer) == 2
        assert buffer.occupancy == pytest.approx(0.2)
        assert buffer.bytes_used == 300

    def test_oversized_value_rejected(self):
        buffer = SlotBuffer(slot_count=10, slot_size_bytes=100)
        with pytest.raises(ValueError):
            buffer.put(0, "v", 200)

    def test_full_buffer_raises(self):
        buffer = SlotBuffer(slot_count=2, slot_size_bytes=100)
        buffer.put(0, "a", 1)
        buffer.put(1, "b", 1)
        with pytest.raises(SlotFullError):
            buffer.put(2, "c", 1)
        # overwriting an existing slot is allowed even when full
        buffer.put(1, "b2", 1)

    def test_trim_frees_slots(self):
        buffer = SlotBuffer(slot_count=5)
        for i in range(5):
            buffer.put(i, f"v{i}", 10)
        removed = buffer.trim(2)
        assert removed == 3
        assert 3 in buffer and 0 not in buffer
        buffer.put(10, "new", 10)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SlotBuffer(slot_count=0)
        with pytest.raises(ValueError):
            SlotBuffer(slot_size_bytes=0)

    def test_clear(self):
        buffer = SlotBuffer()
        buffer.put(0, "v", 10)
        buffer.clear()
        assert len(buffer) == 0


def _value(size=100):
    return ProposalValue(payload=b"x", size_bytes=size)


class TestWriteAheadLog:
    def test_in_memory_mode_never_touches_a_device(self):
        env = Environment()
        log = WriteAheadLog(env, mode=StorageMode.IN_MEMORY)
        log.append(0, 1, _value(), 100)
        env.simulator.run()
        assert log.disk is None
        assert 0 in log

    def test_sync_mode_reports_durable_time(self):
        env = Environment()
        log = WriteAheadLog(env, mode=StorageMode.SYNC_HDD)
        fired = []
        durable_at = log.append(0, 1, _value(), 100, on_durable=lambda: fired.append(env.simulator.now))
        assert durable_at is not None and durable_at > 0
        env.simulator.run()
        assert fired and fired[0] == pytest.approx(durable_at)
        assert log.disk.write_count == 1

    def test_async_mode_flushes_in_background(self):
        env = Environment()
        log = WriteAheadLog(env, mode=StorageMode.ASYNC_SSD, flush_interval=0.01)
        for i in range(10):
            log.append(i, 1, _value(), 100)
        env.simulator.run(until=0.1)
        assert log.disk.write_count >= 1
        assert len(log) == 10

    def test_trim_removes_records(self):
        env = Environment()
        log = WriteAheadLog(env, mode=StorageMode.IN_MEMORY)
        for i in range(10):
            log.append(i, 1, _value(), 10)
        removed = log.trim(4)
        assert removed == 5
        assert log.instances() == [5, 6, 7, 8, 9]
        assert log.highest_instance() == 9

    def test_crash_in_memory_loses_everything(self):
        env = Environment()
        log = WriteAheadLog(env, mode=StorageMode.IN_MEMORY)
        log.append(0, 1, _value(), 10)
        log.crash()
        assert len(log) == 0
        assert log.lost_on_crash == 1

    def test_crash_async_loses_unflushed_tail_only(self):
        env = Environment()
        log = WriteAheadLog(env, mode=StorageMode.ASYNC_HDD, flush_interval=0.01)
        log.append(0, 1, _value(), 10)
        env.simulator.run(until=0.1)  # flushed
        log.append(1, 1, _value(), 10)  # still buffered
        log.crash()
        assert 0 in log
        assert 1 not in log

    def test_crash_sync_keeps_everything(self):
        env = Environment()
        log = WriteAheadLog(env, mode=StorageMode.SYNC_SSD)
        log.append(0, 1, _value(), 10)
        env.simulator.run()
        log.crash()
        assert 0 in log


class TestCheckpointId:
    def test_round_robin_predicate(self):
        assert CheckpointId.from_mapping({0: 5, 1: 5}).satisfies_round_robin_order()
        assert CheckpointId.from_mapping({0: 6, 1: 5}).satisfies_round_robin_order()
        assert not CheckpointId.from_mapping({0: 4, 1: 5}).satisfies_round_robin_order()

    def test_dominates_requires_same_partition(self):
        a = CheckpointId.from_mapping({0: 5, 1: 4})
        b = CheckpointId.from_mapping({0: 3, 1: 2})
        assert a.dominates(b)
        assert not b.dominates(a)
        other_partition = CheckpointId.from_mapping({0: 5})
        with pytest.raises(ValueError):
            a.dominates(other_partition)

    def test_accessors(self):
        cid = CheckpointId.from_mapping({2: 7, 0: 9})
        assert cid.groups() == [0, 2]
        assert cid.instance_for(2) == 7
        assert cid.instance_for(5) == -1
        assert cid.as_dict() == {0: 9, 2: 7}
        assert "g0:9" in str(cid)

    @given(st.dictionaries(st.integers(0, 5), st.integers(0, 100), min_size=1, max_size=5))
    @settings(max_examples=50, deadline=None)
    def test_dominates_is_reflexive(self, mapping):
        cid = CheckpointId.from_mapping(mapping)
        assert cid.dominates(cid)


class TestCheckpointStore:
    def test_save_and_latest(self):
        env = Environment()
        store = CheckpointStore(env, keep=2)
        first = store.save(CheckpointId.from_mapping({0: 1}), state={"a": 1}, size_bytes=100)
        second = store.save(CheckpointId.from_mapping({0: 2}), state={"a": 2}, size_bytes=100)
        assert store.latest() is second
        assert len(store) == 2

    def test_keep_limit_discards_oldest(self):
        env = Environment()
        store = CheckpointStore(env, keep=2)
        for i in range(5):
            store.save(CheckpointId.from_mapping({0: i}), state=i, size_bytes=10)
        assert len(store) == 2
        assert store.all()[0].state == 3

    def test_durable_callback_fires(self):
        env = Environment()
        store = CheckpointStore(env)
        fired = []
        store.save(CheckpointId.from_mapping({0: 1}), state=None, size_bytes=10_000,
                   on_durable=lambda: fired.append(env.simulator.now))
        env.simulator.run()
        assert fired and fired[0] > 0

    def test_keep_must_be_positive(self):
        with pytest.raises(ValueError):
            CheckpointStore(Environment(), keep=0)

    def test_empty_store_has_no_latest(self):
        assert CheckpointStore(Environment()).latest() is None
