"""Tests of the YCSB generator and the simpler workload streams."""

import random

import pytest

from repro.workloads.kv import preload_keys, read_mostly_workload, update_only_workload
from repro.workloads.ycsb import (
    RECORD_BYTES,
    YCSB_WORKLOADS,
    WorkloadSpec,
    YCSBWorkload,
    ycsb_key,
    ycsb_keyspace,
)


class TestYCSBDefinitions:
    def test_all_six_workloads_defined(self):
        assert set(YCSB_WORKLOADS) == {"A", "B", "C", "D", "E", "F"}

    def test_mixes_sum_to_one(self):
        for spec in YCSB_WORKLOADS.values():
            assert sum(w for _, w in spec.mix()) == pytest.approx(1.0)

    def test_keyspace(self):
        keyspace = ycsb_keyspace(10)
        assert len(keyspace) == 10
        assert all(size == RECORD_BYTES for size in keyspace.values())
        assert ycsb_key(3) in keyspace


class TestYCSBGenerator:
    def _workload(self, name, seed=1, records=500):
        return YCSBWorkload(YCSB_WORKLOADS[name], record_count=records, rng=random.Random(seed))

    def test_workload_a_mixes_reads_and_updates(self):
        workload = self._workload("A")
        ops = [workload.next_operation()[0] for _ in range(1000)]
        reads, updates = ops.count("read"), ops.count("update")
        assert 350 < reads < 650
        assert reads + updates == 1000

    def test_workload_c_is_read_only(self):
        workload = self._workload("C")
        assert {workload.next_operation()[0] for _ in range(200)} == {"read"}

    def test_workload_d_inserts_extend_the_keyspace(self):
        workload = self._workload("D", records=100)
        before = workload.record_count
        for _ in range(500):
            workload.next_operation()
        assert workload.record_count > before
        assert workload.issued_counts().get("insert", 0) > 0

    def test_workload_e_generates_bounded_scans(self):
        workload = self._workload("E")
        scans = [op for op in (workload.next_operation() for _ in range(500)) if op[0] == "scan"]
        assert scans
        for op, start, _size, end in scans:
            assert end is not None and end >= start

    def test_workload_f_contains_read_modify_write(self):
        workload = self._workload("F")
        ops = {workload.next_operation()[0] for _ in range(300)}
        assert ops == {"read", "read-modify-write"}

    def test_keys_stay_in_range(self):
        workload = self._workload("A", records=50)
        for _ in range(500):
            op, key, _size, _end = workload.next_operation()
            assert key in ycsb_keyspace(workload.record_count) or op == "insert"

    def test_determinism_per_seed(self):
        first_gen = self._workload("A", seed=9)
        first = [first_gen.next_operation() for _ in range(50)]
        second_gen = self._workload("A", seed=9)
        second = [second_gen.next_operation() for _ in range(50)]
        assert first == second

    def test_requires_records(self):
        with pytest.raises(ValueError):
            YCSBWorkload(YCSB_WORKLOADS["A"], record_count=0, rng=random.Random(1))

    def test_callable_interface(self):
        workload = self._workload("B")
        op, key, size, end = workload(0)
        assert op in ("read", "update")


class TestSimpleWorkloads:
    def test_update_only_workload(self):
        workload = update_only_workload(random.Random(1), key_count=10, value_bytes=256)
        for i in range(20):
            op, key, size, end = workload(i)
            assert op == "update" and size == 256 and key.startswith("key")

    def test_read_mostly_workload_fraction(self):
        workload = read_mostly_workload(random.Random(2), key_count=10, update_fraction=0.2)
        ops = [workload(i)[0] for i in range(500)]
        assert 0.1 < ops.count("update") / len(ops) < 0.35

    def test_read_mostly_invalid_fraction(self):
        with pytest.raises(ValueError):
            read_mostly_workload(random.Random(1), update_fraction=1.5)

    def test_preload_keys_match_workload_prefix(self):
        keys = preload_keys(5, value_bytes=64)
        assert len(keys) == 5
        assert all(size == 64 for size in keys.values())
        workload = update_only_workload(random.Random(3), key_count=5)
        assert workload(0)[1] in keys
