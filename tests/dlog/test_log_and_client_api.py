"""Tests of the shared-log state machine and the dLog client API (Table 2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.dlog.client import DLogCommands, append_request_factory
from repro.dlog.log import SharedLog
from repro.workloads.log import round_robin_logs, single_log


class TestSharedLog:
    def test_append_returns_increasing_positions(self):
        log = SharedLog(0)
        positions = [log.append(1024) for _ in range(5)]
        assert positions == [0, 1, 2, 3, 4]
        assert log.next_position == 5
        assert log.total_appended_bytes == 5 * 1024

    def test_read_returns_cached_entries(self):
        log = SharedLog(0)
        position = log.append(100, payload=b"data")
        entry = log.read(position)
        assert entry.size_bytes == 100 and entry.payload == b"data"
        assert log.read(99) is None

    def test_trim_creates_segment_and_hides_entries(self):
        log = SharedLog(0)
        for _ in range(10):
            log.append(100)
        segment = log.trim(4)
        assert segment.first_position == 0 and segment.last_position == 4
        assert segment.bytes == 500
        assert log.read(3) is None
        assert log.read(5) is not None
        assert log.trimmed_up_to == 4
        assert len(log.segments) == 1

    def test_cache_eviction_respects_budget(self):
        log = SharedLog(0, cache_bytes=1000)
        for _ in range(20):
            log.append(100)
        assert log.cached_bytes <= 1000
        assert log.cached_entries <= 10
        # the newest entries survive
        assert log.read(19) is not None
        assert log.read(0) is None

    def test_snapshot_restore_roundtrip(self):
        log = SharedLog(0)
        for _ in range(5):
            log.append(100)
        log.trim(1)
        snapshot = log.snapshot()
        other = SharedLog(0)
        other.restore(snapshot)
        assert other.next_position == 5
        assert other.trimmed_up_to == 1
        assert other.cached_entries == log.cached_entries

    def test_clear(self):
        log = SharedLog(0)
        log.append(10)
        log.clear()
        assert log.next_position == 0 and log.cached_entries == 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SharedLog(0, cache_bytes=0)
        with pytest.raises(ValueError):
            SharedLog(0).append(-1)

    @given(st.lists(st.integers(10, 1000), min_size=1, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_positions_are_dense_and_monotone(self, sizes):
        log = SharedLog(1)
        positions = [log.append(size) for size in sizes]
        assert positions == list(range(len(sizes)))


class TestTable2Commands:
    def test_append_targets_its_log(self):
        commands = DLogCommands()
        command = commands.append(3, 1024)
        assert command.op == "append" and command.group_id == 3
        assert command.size_bytes > 1024

    def test_multi_append_spans_all_logs_once(self):
        commands = DLogCommands()
        multi = commands.multi_append([2, 0, 2], 512)
        assert [c.group_id for c in multi] == [0, 2]
        assert all(c.op == "multi-append" for c in multi)

    def test_read_and_trim(self):
        commands = DLogCommands()
        read = commands.read(1, position=7)
        assert read.op == "read" and read.args == (7,)
        trim = commands.trim(1, position=7)
        assert trim.op == "trim" and trim.group_id == 1


class TestAppendRequestFactory:
    def test_round_robin_choices(self):
        chooser = round_robin_logs([0, 1, 2])
        assert [chooser(i) for i in range(6)] == [0, 1, 2, 0, 1, 2]
        assert single_log(5)(123) == 5
        with pytest.raises(ValueError):
            round_robin_logs([])

    def test_factory_emits_appends_and_multi_appends(self):
        commands = DLogCommands()
        factory = append_request_factory(
            commands,
            log_chooser=round_robin_logs([0, 1]),
            append_bytes=256,
            multi_append_every=3,
            multi_append_logs=[0, 1],
        )
        first, groups = factory(0)
        assert len(first) == 1 and first[0].op == "append" and groups == [0]
        third, groups3 = factory(2)
        assert [c.op for c in third] == ["multi-append", "multi-append"]
        assert groups3 == [0, 1]
