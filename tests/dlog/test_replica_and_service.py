"""Tests of the dLog replica and the deployed dLog service."""

import pytest

from repro.core import AtomicMulticast, MultiRingConfig
from repro.core.client import Command
from repro.dlog import DLogReplica, DLogService
from repro.sim.disk import StorageMode


def make_replica(persist=False):
    config = MultiRingConfig(rate_interval=None, checkpoint_interval=None, trim_interval=None)
    system = AtomicMulticast(seed=1, config=config)
    return system, DLogReplica(system.env, "d0", config=config, persist_appends=persist)


class TestDLogReplica:
    def test_append_read_trim(self):
        system, replica = make_replica()
        result = replica.apply_command(0, Command(op="append", args=(1024,)))
        assert result == {"log": 0, "position": 0}
        replica.apply_command(0, Command(op="append", args=(1024,)))
        read = replica.apply_command(0, Command(op="read", args=(1,)))
        assert read["found"] and read["size"] == 1024
        trim = replica.apply_command(0, Command(op="trim", args=(0,)))
        assert trim["trimmed_up_to"] == 0
        assert not replica.apply_command(0, Command(op="read", args=(0,)))["found"]

    def test_each_group_backs_its_own_log(self):
        system, replica = make_replica()
        replica.apply_command(0, Command(op="append", args=(100,)))
        replica.apply_command(1, Command(op="append", args=(100,)))
        replica.apply_command(1, Command(op="append", args=(100,)))
        assert replica.log_for(0).next_position == 1
        assert replica.log_for(1).next_position == 2
        assert replica.total_appends() == 3

    def test_multi_append_is_applied_per_delivering_group(self):
        system, replica = make_replica()
        result = replica.apply_command(2, Command(op="multi-append", args=(100,)))
        assert result["log"] == 2 and result["position"] == 0

    def test_persisted_appends_touch_the_device(self):
        system, replica = make_replica(persist=True)
        replica.apply_command(0, Command(op="append", args=(4096,)))
        assert replica._disk_for(0).write_count == 1

    def test_unknown_operation_rejected(self):
        system, replica = make_replica()
        with pytest.raises(ValueError):
            replica.apply_command(0, Command(op="compact"))

    def test_snapshot_roundtrip(self):
        system, replica = make_replica()
        replica.apply_command(0, Command(op="append", args=(100,)))
        state, size = replica.snapshot_state()
        replica.reset_state()
        assert replica.total_appends() == 0
        replica.install_state_snapshot(state)
        assert replica.log_for(0).next_position == 1

    def test_snapshot_roundtrip_with_persisted_appends(self):
        """Full round trip under ``persist_appends=True``: a snapshot taken
        from a replica that persists to its per-log devices restores every
        log's contents, trim state and append positions on a fresh replica —
        and the restored replica's subsequent appends continue seamlessly
        (both in the log and on its own device)."""
        system, replica = make_replica(persist=True)
        for _ in range(3):
            replica.apply_command(0, Command(op="append", args=(512,)))
        for _ in range(2):
            replica.apply_command(1, Command(op="append", args=(256,)))
        replica.apply_command(0, Command(op="trim", args=(0,)))
        assert replica._disk_for(0).write_count == 3
        assert replica._disk_for(1).write_count == 2

        state, size = replica.snapshot_state()
        assert size >= 3 * 512 + 2 * 256 - 512  # trimmed segment excluded

        restored = DLogReplica(
            system.env, "d1", config=replica.config, persist_appends=True
        )
        restored.install_state_snapshot(state)
        # Contents and positions survive the round trip exactly.
        assert restored.total_appends() == replica.total_appends() == 5
        assert restored.log_for(0).next_position == 3
        assert restored.log_for(1).next_position == 2
        assert not restored.apply_command(0, Command(op="read", args=(0,)))["found"]
        read = restored.apply_command(0, Command(op="read", args=(2,)))
        assert read["found"] and read["size"] == 512
        read = restored.apply_command(1, Command(op="read", args=(1,)))
        assert read["found"] and read["size"] == 256
        # Appends continue where the snapshot left off, hitting the restored
        # replica's own device (persistence is per replica, not snapshot state).
        result = restored.apply_command(0, Command(op="append", args=(512,)))
        assert result == {"log": 0, "position": 3}
        assert restored._disk_for(0).write_count == 1
        # The snapshot is a deep copy: the source's later appends do not leak.
        assert replica.log_for(0).next_position == 3

    def test_snapshot_is_isolated_from_source_mutations(self):
        """Appending to the source after ``snapshot_state`` must not change
        what a restore observes (the checkpointer snapshots asynchronously)."""
        system, replica = make_replica()
        replica.apply_command(0, Command(op="append", args=(100,)))
        state, _ = replica.snapshot_state()
        replica.apply_command(0, Command(op="append", args=(100,)))
        restored = DLogReplica(system.env, "d2", config=replica.config)
        restored.install_state_snapshot(state)
        assert restored.log_for(0).next_position == 1
        assert not restored.apply_command(0, Command(op="read", args=(1,)))["found"]


def build_dlog(logs=(0, 1), common_ring=None, seed=5, sync=False, replica_count=2):
    config = MultiRingConfig(
        storage_mode=StorageMode.SYNC_HDD if sync else StorageMode.ASYNC_SSD,
        rate_interval=0.005,
        max_rate=500.0,
        checkpoint_interval=None,
        trim_interval=None,
    )
    system = AtomicMulticast(seed=seed, config=config)
    service = DLogService(
        system,
        log_ids=list(logs),
        acceptors_per_log=3,
        replica_count=replica_count,
        common_ring_id=common_ring,
        dedicated_disks=sync,
        config=config,
    )
    return system, service


class TestDLogService:
    def test_appends_complete_and_replicas_agree(self):
        system, service = build_dlog()
        client = service.create_append_client("c", concurrency=4, append_bytes=512)
        system.start()
        system.run(until=2.0)
        assert client.completed > 20
        first, second = service.replicas
        assert first.total_appends() == second.total_appends()
        assert first.total_appends() >= client.completed

    def test_positions_are_identical_across_replicas(self):
        system, service = build_dlog()
        # A bounded request count lets the system quiesce, so both replicas
        # must end at exactly the same log tails.
        client = service.create_append_client("c", concurrency=2, append_bytes=512,
                                               max_requests=200)
        system.start()
        system.run(until=5.0)
        assert client.completed == 200
        first, second = service.replicas
        for log_id in service.log_ids:
            assert first.log_for(log_id).next_position == second.log_for(log_id).next_position

    def test_multi_append_waits_for_every_log(self):
        system, service = build_dlog()
        client = service.create_append_client(
            "c", concurrency=2, append_bytes=256, multi_append_every=3
        )
        system.start()
        system.run(until=2.0)
        assert client.completed > 10
        first = service.replicas[0]
        assert first.log_for(0).next_position > 0
        assert first.log_for(1).next_position > 0

    def test_common_ring_subscription(self):
        system, service = build_dlog(common_ring=9)
        for replica in service.replicas:
            assert 9 in replica.subscribed_groups()
        client = service.create_append_client("c", concurrency=2)
        system.start()
        system.run(until=2.0)
        assert client.completed > 10

    def test_requires_logs(self):
        system = AtomicMulticast(seed=1)
        with pytest.raises(ValueError):
            DLogService(system, log_ids=[])

    def test_dedicated_disks_create_one_device_per_ring(self):
        system, service = build_dlog(sync=True)
        node0_disk = system.env.actor("dlog0-node0").node(0).acceptor.log.disk
        node1_disk = system.env.actor("dlog1-node0").node(1).acceptor.log.disk
        assert node0_disk is not None and node1_disk is not None
        assert node0_disk is not node1_disk
