"""Tests of the trim quorum computation, the predicates and the checkpointer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.recovery.checkpointing import ReplicaCheckpointer
from repro.recovery.trim import compute_trim_point, predicates_hold, trim_quorum_size
from repro.sim.actor import Environment
from repro.storage.checkpoint import CheckpointStore


class TestTrimQuorum:
    def test_quorum_size_is_a_majority(self):
        assert trim_quorum_size(1) == 1
        assert trim_quorum_size(3) == 2
        assert trim_quorum_size(4) == 3
        with pytest.raises(ValueError):
            trim_quorum_size(0)

    def test_trim_point_requires_quorum(self):
        assert compute_trim_point({"r1": 10}, quorum=2) is None
        assert compute_trim_point({"r1": 10, "r2": 7}, quorum=2) == 7

    def test_trim_point_is_the_minimum(self):
        reports = {"r1": 100, "r2": 50, "r3": 80}
        assert compute_trim_point(reports, quorum=3) == 50

    def test_unckeckpointed_replica_blocks_trimming(self):
        assert compute_trim_point({"r1": -1, "r2": 10}, quorum=2) is None

    def test_invalid_quorum(self):
        with pytest.raises(ValueError):
            compute_trim_point({"r1": 1}, quorum=0)

    @given(
        st.dictionaries(st.sampled_from(["a", "b", "c", "d", "e"]), st.integers(0, 1000),
                        min_size=1, max_size=5)
    )
    @settings(max_examples=60, deadline=None)
    def test_predicate2_trim_point_never_exceeds_any_quorum_member(self, reports):
        """Predicate 2: K_T <= k[x]_p for every p in the quorum."""
        quorum = len(reports)
        trim_point = compute_trim_point(reports, quorum=quorum)
        if trim_point is not None:
            assert all(trim_point <= safe for safe in reports.values())

    @given(
        st.dictionaries(st.sampled_from(list("abcdefg")), st.integers(0, 100), min_size=3, max_size=7),
        st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_predicate5_holds_for_intersecting_quorums(self, reports, data):
        """Predicate 5: with intersecting quorums, K_T <= K_R."""
        names = sorted(reports)
        majority = len(names) // 2 + 1
        trim_q = {n: reports[n] for n in data.draw(st.permutations(names))[:majority]}
        recovery_q = {n: reports[n] for n in data.draw(st.permutations(names))[:majority]}
        assert predicates_hold(trim_q, recovery_q)

    def test_non_intersecting_quorums_rejected(self):
        with pytest.raises(ValueError):
            predicates_hold({"a": 1}, {"b": 2})


class TestReplicaCheckpointer:
    def _checkpointer(self, groups=(0,), boundary=None):
        env = Environment()
        store = CheckpointStore(env)
        state = {"value": 0}
        boundary_flag = {"at_boundary": True}

        def snapshot():
            return dict(state), 100

        checkpointer = ReplicaCheckpointer(
            store=store,
            snapshot_fn=snapshot,
            group_ids=list(groups),
            at_round_boundary=boundary or (lambda: boundary_flag["at_boundary"]),
        )
        return env, checkpointer, state, boundary_flag

    def test_requires_groups(self):
        env = Environment()
        with pytest.raises(ValueError):
            ReplicaCheckpointer(CheckpointStore(env), lambda: (None, 1), group_ids=[])

    def test_checkpoint_records_delivered_positions(self):
        env, checkpointer, state, _ = self._checkpointer(groups=(0, 1))
        checkpointer.mark_delivered(0, 10)
        checkpointer.mark_delivered(1, 9)
        assert checkpointer.request_checkpoint()
        latest = checkpointer.latest()
        assert latest.checkpoint_id.as_dict() == {0: 10, 1: 9}
        assert latest.checkpoint_id.satisfies_round_robin_order()
        assert checkpointer.checkpoints_taken == 1

    def test_safe_instance_reflects_last_checkpoint_only(self):
        env, checkpointer, state, _ = self._checkpointer()
        assert checkpointer.safe_instance(0) == -1
        checkpointer.mark_delivered(0, 5)
        checkpointer.request_checkpoint()
        checkpointer.mark_delivered(0, 50)
        assert checkpointer.safe_instance(0) == 5

    def test_deferred_checkpoint_waits_for_round_boundary(self):
        env, checkpointer, state, boundary = self._checkpointer()
        boundary["at_boundary"] = False
        assert not checkpointer.request_checkpoint()
        assert checkpointer.checkpoints_taken == 0
        boundary["at_boundary"] = True
        assert checkpointer.maybe_take_deferred()
        assert checkpointer.checkpoints_taken == 1
        # no pending request left
        assert not checkpointer.maybe_take_deferred()

    def test_mark_delivered_ignores_regressions_and_unknown_groups(self):
        env, checkpointer, state, _ = self._checkpointer()
        checkpointer.mark_delivered(0, 10)
        checkpointer.mark_delivered(0, 5)
        assert checkpointer.delivered_positions() == {0: 10}
        with pytest.raises(KeyError):
            checkpointer.mark_delivered(9, 1)

    def test_install_adopts_remote_positions(self):
        env, checkpointer, state, _ = self._checkpointer(groups=(0, 1))
        checkpointer.mark_delivered(0, 3)
        checkpointer.request_checkpoint()
        remote_env, remote, _, _ = self._checkpointer(groups=(0, 1))
        remote.mark_delivered(0, 20)
        remote.mark_delivered(1, 20)
        remote_checkpoint = remote.store.latest() or remote.request_checkpoint() or remote.store.latest()
        remote.request_checkpoint()
        checkpointer.install(remote.store.latest())
        assert checkpointer.delivered_positions() == {0: 20, 1: 20}

    def test_on_checkpoint_callback(self):
        env, checkpointer, state, _ = self._checkpointer()
        seen = []
        checkpointer.on_checkpoint(lambda ckpt: seen.append(ckpt.checkpoint_id))
        checkpointer.mark_delivered(0, 2)
        checkpointer.request_checkpoint()
        assert len(seen) == 1
