"""Recovery under compounded faults: the helper dies mid-recovery.

The end-to-end recovery tests cover the happy path (crash, restart, catch
up).  These tests kill the process a recovering replica depends on at the
two critical hand-off points of ``recovery/recover.py``:

* the *checkpoint source* crashes after being chosen, while the recovering
  replica waits for the state transfer (``FETCHING_STATE``);
* the *acceptor serving retransmission* crashes just as the requests go out
  (``_begin_retransmission``).

In both cases the replica must stall cleanly (no crash, no corrupt state) and
converge after the operator restarts it once the infrastructure is back — the
same contract the chaos runner's healing epilogue relies on.
"""

import random

import pytest

from repro.core import AtomicMulticast, MultiRingConfig
from repro.kvstore import MRPStoreService
from repro.recovery.recover import RecoveryManager, RecoveryPhase
from repro.workloads import preload_keys, update_only_workload


def build_service(checkpoint_interval=0.5, seed=31):
    config = MultiRingConfig(
        rate_interval=None,
        checkpoint_interval=checkpoint_interval,
        trim_interval=None,
    )
    system = AtomicMulticast(seed=seed, config=config)
    service = MRPStoreService(
        system, partition_groups=[0], acceptors_per_partition=3,
        replicas_per_partition=3, config=config,
    )
    service.preload(preload_keys(60))
    client = service.create_client(
        "load", update_only_workload(random.Random(seed), key_count=60), concurrency=2
    )
    return system, service, client


class TestCheckpointSourceCrash:
    def test_source_crash_mid_install_stalls_cleanly_then_converges(self, monkeypatch):
        system, service, client = build_service()
        victim = service.replicas[0][2]
        system.start()
        system.run(until=1.5)  # a few checkpoints exist
        system.crash_process(victim.name)
        system.run(until=2.5)

        # Crash the chosen peer the moment the state request goes out: the
        # in-flight CheckpointRequest(include_state=True) is dropped at the
        # dead process and no state reply will ever arrive.
        original = RecoveryManager._choose_checkpoint
        killed = {}

        def choose_and_kill(self):
            original(self)
            if self.host is victim and self.chosen_peer and not killed:
                killed["peer"] = self.chosen_peer
                system.crash_process(self.chosen_peer)

        monkeypatch.setattr(RecoveryManager, "_choose_checkpoint", choose_and_kill)
        system.restart_process(victim.name)
        system.run(until=4.0)
        assert killed, "recovery never chose a checkpoint source"
        assert victim.recovery_phase is RecoveryPhase.FETCHING_STATE  # clean stall
        assert victim.alive

        # Infrastructure comes back; a fresh restart of the victim recovers.
        monkeypatch.setattr(RecoveryManager, "_choose_checkpoint", original)
        system.restart_process(killed["peer"])
        system.run(until=5.0)
        system.crash_process(victim.name)
        system.run(until=5.2)
        system.restart_process(victim.name)
        system.run(until=8.0)
        assert victim.recovery_phase is RecoveryPhase.DONE
        survivor = service.replicas[0][0]
        assert len(victim.store) == len(survivor.store)


class TestRetransmissionAcceptorCrash:
    def test_acceptor_crash_during_begin_retransmission_then_converges(self, monkeypatch):
        system, service, client = build_service(checkpoint_interval=None)
        victim = service.replicas[0][2]
        system.start()
        system.run(until=1.0)
        system.crash_process(victim.name)
        system.run(until=1.6)

        # No checkpoints: recovery goes straight to retransmission.  Crash
        # the serving acceptor right after the requests were sent, so they
        # are dropped in flight and no reply ever comes.
        original = RecoveryManager._begin_retransmission
        killed = {}

        def begin_and_kill(self, from_positions):
            original(self, from_positions)
            if self.host is victim and not killed:
                acceptor = self._acceptors_by_group[0][0]
                killed["acceptor"] = acceptor
                system.crash_process(acceptor)

        monkeypatch.setattr(RecoveryManager, "_begin_retransmission", begin_and_kill)
        system.restart_process(victim.name)
        system.run(until=3.0)
        assert killed, "recovery never reached retransmission"
        assert victim.recovery_phase is RecoveryPhase.RETRANSMITTING  # clean stall
        assert victim.alive

        # Restart the victim while the acceptor is still down: recovery must
        # route around the dead acceptor (it filters for live ones) and
        # complete off another acceptor's log.
        monkeypatch.setattr(RecoveryManager, "_begin_retransmission", original)
        system.crash_process(victim.name)
        system.run(until=3.2)
        system.restart_process(victim.name)
        system.run(until=5.5)
        assert victim.recovery_phase is RecoveryPhase.DONE
        survivor = service.replicas[0][0]
        assert victim.delivered_position(0) >= survivor.delivered_position(0) - 50
        # the dead acceptor stays dead throughout — recovery never needed it
        assert not system.env.actor(killed["acceptor"]).alive


class TestRecoveryQuorumEdge:
    def test_two_replica_partition_recovers_off_its_single_peer(self):
        """|partition| = 2: the only peer's answer must unblock recovery."""
        config = MultiRingConfig(
            rate_interval=None, checkpoint_interval=0.5, trim_interval=None,
        )
        system = AtomicMulticast(seed=7, config=config)
        service = MRPStoreService(
            system, partition_groups=[0], acceptors_per_partition=3,
            replicas_per_partition=2, config=config,
        )
        service.preload(preload_keys(40))
        client = service.create_client(
            "load", update_only_workload(random.Random(7), key_count=40), concurrency=2
        )
        victim = service.replicas[0][1]
        system.start()
        system.run(until=1.5)
        system.crash_process(victim.name)
        system.run(until=2.2)
        system.restart_process(victim.name)
        system.run(until=4.5)
        assert victim.recovery_phase is RecoveryPhase.DONE
        survivor = service.replicas[0][0]
        assert len(victim.store) == len(survivor.store)
