"""End-to-end tests of the recovery protocol on a running deployment.

Every test here simulates many seconds of checkpoint/trim/recovery traffic
(the whole module costs ~130 s of the tier-1 budget), so the module is marked
``slow``: the default ``-m "not slow"`` tier skips it, CI runs it with
``-m slow``.  The fast fault-path coverage lives in ``test_recovery_faults.py``
and ``tests/chaos/``.
"""

import random

import pytest

pytestmark = pytest.mark.slow

from repro.core import AtomicMulticast, MultiRingConfig
from repro.kvstore import MRPStoreService
from repro.recovery.recover import RecoveryPhase
from repro.workloads import preload_keys, update_only_workload


def build_service(checkpoint_interval=1.0, trim_interval=2.0, replicas=3, seed=13):
    config = MultiRingConfig(
        rate_interval=None,
        checkpoint_interval=checkpoint_interval,
        trim_interval=trim_interval,
    )
    system = AtomicMulticast(seed=seed, config=config)
    service = MRPStoreService(
        system, partition_groups=[0], acceptors_per_partition=3, replicas_per_partition=replicas,
        config=config,
    )
    service.preload(preload_keys(200))
    rng = random.Random(seed)
    client = service.create_client(
        "load", update_only_workload(rng, key_count=200), concurrency=4
    )
    return system, service, client


class TestCheckpointAndTrim:
    def test_replicas_checkpoint_periodically(self):
        system, service, client = build_service()
        system.start()
        system.run(until=4.0)
        for replica in service.all_replicas():
            assert replica.checkpointer is not None
            assert replica.checkpointer.checkpoints_taken >= 2

    def test_acceptor_logs_get_trimmed(self):
        system, service, client = build_service()
        system.start()
        system.run(until=6.0)
        acceptor = system.env.actor("kv0-node0").node(0).acceptor
        assert acceptor.trimmed_up_to > 0

    def test_trim_point_never_exceeds_any_replica_checkpoint(self):
        system, service, client = build_service()
        system.start()
        system.run(until=6.0)
        acceptor = system.env.actor("kv0-node0").node(0).acceptor
        safes = [r.checkpointer.safe_instance(0) for r in service.all_replicas()]
        assert acceptor.trimmed_up_to <= max(safes)

    def test_no_trim_without_checkpoints(self):
        system, service, client = build_service(checkpoint_interval=None, trim_interval=1.0)
        system.start()
        system.run(until=4.0)
        acceptor = system.env.actor("kv0-node0").node(0).acceptor
        assert acceptor.trimmed_up_to == -1


class TestReplicaRecovery:
    def test_crashed_replica_catches_up_via_checkpoint_and_retransmission(self):
        system, service, client = build_service()
        victim = service.replicas[0][2]
        survivor = service.replicas[0][0]
        system.start()
        system.run(until=3.0)
        system.crash_process(victim.name)
        system.run(until=8.0)
        assert victim.commands_applied == 0
        system.restart_process(victim.name)
        system.run(until=12.0)
        assert victim.recovery_phase is RecoveryPhase.DONE
        assert victim.delivered_position(0) >= survivor.delivered_position(0) - 50
        assert len(victim.store) == len(survivor.store)

    def test_recovering_replica_installs_a_peer_checkpoint(self):
        system, service, client = build_service()
        victim = service.replicas[0][1]
        system.start()
        system.run(until=3.0)
        system.crash_process(victim.name)
        system.run(until=8.0)
        system.restart_process(victim.name)
        system.run(until=12.0)
        assert victim._recovery is not None
        assert victim._recovery.chosen_peer in {r.name for r in service.replicas[0]} - {victim.name}

    def test_recovery_without_any_checkpoint_uses_acceptor_logs_only(self):
        system, service, client = build_service(checkpoint_interval=None, trim_interval=None)
        victim = service.replicas[0][2]
        survivor = service.replicas[0][0]
        system.start()
        system.run(until=2.0)
        system.crash_process(victim.name)
        system.run(until=4.0)
        system.restart_process(victim.name)
        system.run(until=8.0)
        assert victim.recovery_phase is RecoveryPhase.DONE
        assert victim.delivered_position(0) >= survivor.delivered_position(0) - 50

    def test_service_keeps_serving_while_a_replica_is_down(self):
        system, service, client = build_service()
        victim = service.replicas[0][2]
        system.start()
        system.run(until=3.0)
        completed_before = client.completed
        system.crash_process(victim.name)
        system.run(until=6.0)
        assert client.completed > completed_before

    def test_two_consecutive_failures_and_recoveries(self):
        system, service, client = build_service()
        victim = service.replicas[0][2]
        system.start()
        system.run(until=2.0)
        for crash_at, restart_at in ((2.0, 4.0), (6.0, 8.0)):
            system.crash_process(victim.name)
            system.run(until=restart_at)
            system.restart_process(victim.name)
            system.run(until=restart_at + 3.0)
        survivor = service.replicas[0][0]
        assert victim.recovery_phase is RecoveryPhase.DONE
        assert len(victim.store) == len(survivor.store)
