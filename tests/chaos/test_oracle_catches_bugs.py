"""Prove the harness can fail: inject ordering bugs, expect violations.

A chaos harness whose oracle never fires is worthless.  These tests sabotage
the merge/learner path of one learner — the exact component the paper's order
property depends on — and assert the oracle catches it.
"""

import pytest

from repro.chaos.oracle import check_delivery_properties
from repro.chaos.trace import TraceRecorder
from repro.core import AtomicMulticast, MultiRingConfig
from repro.multiring import MultiRingProcess


def build_two_ring_deployment(seed=5):
    config = MultiRingConfig(
        rate_interval=0.005,
        max_rate=1000.0,
        checkpoint_interval=None,
        trim_interval=None,
        gap_repair_interval=0.15,
    )
    system = AtomicMulticast(seed=seed, config=config)
    processes = {
        name: MultiRingProcess(system.env, name) for name in ("p0", "p1", "p2", "p3")
    }
    system.create_ring(0, [("p0", "pal"), ("p1", "pal"), ("p2", "pal"), ("p3", "l")])
    system.create_ring(1, [("p0", "pal"), ("p1", "pal"), ("p3", "pal"), ("p2", "l")])
    recorder = TraceRecorder()
    for process in processes.values():
        recorder.attach(process)
    return system, processes, recorder


def drive_workload(system, processes, recorder, count=24):
    sim = system.env.simulator
    for i in range(count):
        group = i % 2
        sender = processes["p0"] if i % 3 else processes["p1"]
        payload = f"g{group}-m{i}"

        def send(sender=sender, group=group, payload=payload):
            recorder.record_sent(payload, sender.name, group, sim.now)
            sender.multicast(group, payload=payload, size_bytes=64)

        sim.call_later(0.01 + 0.005 * i, send)
    system.start()
    system.run(until=2.0)


def sabotage_merger_swap(process):
    """Make one learner emit each pair of deliveries in swapped order."""
    merger = process.merger
    original = merger._on_deliver
    held = []

    def swapping(group, instance, value):
        held.append((group, instance, value))
        if len(held) == 2:
            original(*held[1])
            original(*held[0])
            held.clear()

    merger._on_deliver = swapping


def sabotage_merger_duplicate(process, payload_marker="m4"):
    """Make one learner deliver a chosen message twice."""
    merger = process.merger
    original = merger._on_deliver

    def duplicating(group, instance, value):
        original(group, instance, value)
        if isinstance(value.payload, str) and value.payload.endswith(payload_marker):
            original(group, instance, value)

    merger._on_deliver = duplicating


def sabotage_merger_drop(process, payload_marker="m6"):
    """Make one learner silently drop a chosen message."""
    merger = process.merger
    original = merger._on_deliver

    def dropping(group, instance, value):
        if isinstance(value.payload, str) and value.payload.endswith(payload_marker):
            return
        original(group, instance, value)

    merger._on_deliver = dropping


class TestHealthyBaseline:
    def test_unsabotaged_run_passes(self):
        system, processes, recorder = build_two_ring_deployment()
        drive_workload(system, processes, recorder)
        assert check_delivery_properties(recorder) == []


class TestInjectedBugsAreCaught:
    def test_swapped_merge_order_is_caught(self):
        system, processes, recorder = build_two_ring_deployment()
        sabotage_merger_swap(processes["p2"])
        drive_workload(system, processes, recorder)
        violations = check_delivery_properties(recorder, check_validity=False)
        assert any(v.prop == "acyclic-order" for v in violations), (
            "the oracle missed a deliberately swapped merge order"
        )

    def test_duplicate_delivery_is_caught(self):
        system, processes, recorder = build_two_ring_deployment()
        sabotage_merger_duplicate(processes["p1"])
        drive_workload(system, processes, recorder)
        violations = check_delivery_properties(recorder, check_validity=False)
        assert any(
            v.prop == "integrity" and "twice" in v.detail for v in violations
        ), "the oracle missed a duplicate delivery"

    def test_dropped_delivery_is_caught(self):
        system, processes, recorder = build_two_ring_deployment()
        sabotage_merger_drop(processes["p3"])
        drive_workload(system, processes, recorder)
        violations = check_delivery_properties(recorder, check_validity=False)
        assert any(v.prop == "agreement" for v in violations), (
            "the oracle missed a silently dropped delivery"
        )


class TestArtifactDump:
    def test_violation_produces_replayable_artifact(self, tmp_path, monkeypatch):
        """A sabotaged scenario run dumps a JSON artifact with the seed."""
        import json

        from repro.chaos import scenario as scenario_mod
        from repro.multiring.merge import DeterministicMerger

        # Break the round-robin globally but arrival-dependently: consume from
        # whichever ring has input instead of honouring the merge order.
        original_offer = DeterministicMerger.offer

        def eager_offer(self, group_id, instance, value):
            self._emit(group_id, instance, value)

        monkeypatch.setattr(DeterministicMerger, "offer", eager_offer)
        # find an amcast seed with >1 ring so the sabotage can bite
        seed = next(
            s for s in range(100)
            if scenario_mod.generate_spec(s)["family"] == "amcast"
            and len(scenario_mod.generate_spec(s)["rings"]) > 1
        )
        result = scenario_mod.run_scenario(seed, artifacts_dir=str(tmp_path))
        monkeypatch.setattr(DeterministicMerger, "offer", original_offer)
        assert not result.ok
        assert result.artifact_path is not None
        with open(result.artifact_path) as handle:
            artifact = json.load(handle)
        assert artifact["seed"] == seed
        assert str(seed) in artifact["replay"]
        assert artifact["violations"]
        assert artifact["spec"]["schedule"] == scenario_mod.generate_spec(seed)["schedule"]
