"""Batched chaos scenarios: the batching path under the invariant oracle.

The generator draws a batched variant for every scenario family (coordinator
value batching with a random size-or-timeout delay, drawn from a dedicated
seed stream so pre-existing draws are untouched).  These smokes pin a few
known-batched seeds per family and require every invariant to hold — the
same oracle, the same delivery-trace checks, just with values packed into
shared consensus instances on the way through.
"""

import pytest

from repro.chaos import generate_spec, run_scenario

#: Seeds whose generated spec draws ``batching: True``, per family
#: (verified by ``test_seeds_draw_batching``; regenerate by scanning
#: ``generate_spec`` if the draw streams ever change).
BATCHED_SEEDS = {
    "amcast": [3, 8, 14],
    "kvstore": [5, 7, 9],
    "dlog": [6, 13, 22],
}


class TestBatchedScenarioFamily:
    def test_seeds_draw_batching(self):
        for family, seeds in BATCHED_SEEDS.items():
            for seed in seeds:
                spec = generate_spec(seed)
                assert spec["family"] == family, (family, seed, spec["family"])
                assert spec.get("batching") is True, (family, seed)
                assert 0.0002 <= spec["batch_max_delay"] <= 0.002

    def test_every_family_has_batched_and_unbatched_draws(self):
        """The batched variant is a *family*, not a global switch."""
        seen = {}
        for seed in range(120):
            spec = generate_spec(seed)
            seen.setdefault(spec["family"], set()).add(bool(spec.get("batching")))
        for family in ("amcast", "kvstore", "dlog"):
            assert seen[family] == {True, False}, (family, seen.get(family))

    @pytest.mark.parametrize(
        "seed", [s for seeds in BATCHED_SEEDS.values() for s in seeds]
    )
    def test_batched_scenario_upholds_every_invariant(self, seed, tmp_path):
        result = run_scenario(seed, artifacts_dir=str(tmp_path))
        assert result.ok, (
            f"seed {seed} ({result.family}): "
            + "; ".join(str(v) for v in result.violations)
        )
