"""Sharded execution of chaos scenarios (`--workers`): eligibility and
determinism.

Scenarios whose rings form components disjoint in their traffic-generating
members (proposers/acceptors) opt into sharded execution — including the
shared-learner draws, where a learner-only subscriber spans every ring and a
merge stage reconstructs its cross-component delivery order.  Everything
else must fall back to the single-process runner with an explicit marker in
its stats.
"""

from __future__ import annotations

import pytest

from repro.chaos.scenario import (
    _run_amcast_sharded,
    generate_spec,
    run_scenario,
    shardable_components,
    shared_merge_learners,
)

#: Scanned once; the generator guarantees a fraction of disjoint multi-ring
#: scenarios, so this range always yields a handful (seed 36 is the first).
SEED_RANGE = range(0, 120)


def _eligible_seeds(count: int, require_merge_learners=None):
    found = []
    for seed in SEED_RANGE:
        spec = generate_spec(seed)
        components = shardable_components(spec)
        if not components:
            continue
        if require_merge_learners is not None:
            has_shared = bool(shared_merge_learners(spec, components))
            if has_shared != require_merge_learners:
                continue
        found.append(seed)
        if len(found) == count:
            break
    return found


def test_generator_produces_shardable_scenarios():
    seeds = _eligible_seeds(3)
    assert len(seeds) == 3, "expected disjoint-ring scenarios in the seed range"
    for seed in seeds:
        components = shardable_components(generate_spec(seed))
        assert len(components) >= 2
        # Components are disjoint in their traffic-generating members; only
        # learner-only subscribers (handled by the merge stage) may span.
        spec = generate_spec(seed)
        members = [
            {m[0] for rid in comp for m in spec["rings"][rid] if m[1] != "l"}
            for comp in components
        ]
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                assert not (a & b)


def test_generator_produces_shared_learner_draws():
    """Some draws couple process-disjoint rings through one shared learner."""
    seeds = _eligible_seeds(2, require_merge_learners=True)
    assert len(seeds) == 2, "expected shared-learner scenarios in the seed range"
    for seed in seeds:
        spec = generate_spec(seed)
        components = shardable_components(spec)
        learners = shared_merge_learners(spec, components)
        assert learners
        for name in learners:
            subscribed = [
                rid for rid, members in spec["rings"].items()
                if any(m[0] == name and "l" in m[1] for m in members)
            ]
            assert len(subscribed) >= 2, "shared learner must span rings"


def test_site_faults_disqualify():
    for seed in SEED_RANGE:
        spec = generate_spec(seed)
        if any(
            event.get("action") in ("partition", "isolate")
            for event in spec.get("schedule", [])
        ):
            assert shardable_components(spec) is None or spec["family"] != "amcast"
            return
    pytest.skip("no site-fault scenario in the scanned range")


def test_sharded_verdict_and_traces_match_single_process_engine():
    """workers=2 and workers=1 produce identical verdicts and deliveries."""
    seed = _eligible_seeds(1)[0]
    spec = generate_spec(seed)
    components = shardable_components(spec)
    v1, s1, t1, d1 = _run_amcast_sharded(spec, components, workers=1)
    v2, s2, t2, d2 = _run_amcast_sharded(spec, components, workers=2)
    assert [(v.prop, v.detail) for v in v1] == [(v.prop, v.detail) for v in v2]
    assert d1 == d2, "per-learner delivery sequences differ across worker counts"
    assert t1 == t2
    assert s1["deliveries"] == s2["deliveries"]
    assert s1["sent"] == s2["sent"]
    assert d1, "sharded run delivered nothing"


def test_run_scenario_opts_in_and_reports_shards():
    seed = _eligible_seeds(1)[0]
    result = run_scenario(seed, workers=2)
    assert result.ok, result.violations
    sharded = result.stats["sharded"]
    assert sharded["workers"] == 2
    assert len(sharded["shards"]) >= 2


def test_shared_learner_merge_stage_identical_across_workers():
    """Shared-learner draws shard: merged digests match across worker counts.

    The shared learner is mirrored into every shard; the merge stage streams
    the recorded incarnation-segmented per-ring streams into its
    cross-component delivery digest, which must be byte-identical between
    the in-process engine and two workers.  Since the merge became
    incarnation-aware there is no fault-touched fallback: *every* shared
    learner that recorded streams gets a merged digest, crashed/restarted or
    not.
    """
    seeds = _eligible_seeds(2, require_merge_learners=True)
    assert seeds, "expected shared-learner seeds in the range"
    for seed in seeds:
        spec = generate_spec(seed)
        components = shardable_components(spec)
        learners = shared_merge_learners(spec, components)
        v1, s1, t1, d1 = _run_amcast_sharded(spec, components, workers=1)
        v2, s2, t2, d2 = _run_amcast_sharded(spec, components, workers=2)
        assert [(v.prop, v.detail) for v in v1] == [(v.prop, v.detail) for v in v2]
        assert d1 == d2
        assert t1 == t2
        assert s1["sharded"]["merge_learners"] == learners
        for name in learners:
            assert d1.get(name), f"merge stage produced no digest for {name}"
            # The merged digest spans every component the learner subscribes
            # to (skips excluded from the digest, so only components whose
            # rings carried application messages appear).
            groups = {group for group, _, _ in d1[name]}
            assert groups, "merged digest delivered nothing"


def test_fault_touched_shared_learner_still_gets_merged_digest():
    """A shared learner crashed/restarted mid-run must still merge.

    The generator's shared-learner fault family crashes the learner itself;
    its restarted incarnation re-emits stream prefixes, and the merge stage
    dedups them instead of bailing out to per-shard partial digests.  Scan
    the seed range for such a draw and require the merged digest plus a
    clean verdict at both worker counts.
    """
    found = None
    for seed in SEED_RANGE:
        spec = generate_spec(seed)
        components = shardable_components(spec)
        if not components:
            continue
        learners = shared_merge_learners(spec, components)
        if not learners:
            continue
        touched = {
            event.get("params", {}).get("process")
            for event in spec["schedule"]
            if event.get("action") in ("crash", "restart")
        }
        if any(name in touched for name in learners):
            found = (seed, spec, components, learners)
            break
    assert found is not None, "no crashed-shared-learner seed in the range"
    seed, spec, components, learners = found
    v1, s1, t1, d1 = _run_amcast_sharded(spec, components, workers=1)
    v2, s2, t2, d2 = _run_amcast_sharded(spec, components, workers=2)
    assert [(v.prop, v.detail) for v in v1] == [(v.prop, v.detail) for v in v2]
    assert d1 == d2
    reactive = s1["sharded"]["reactive_merge"]
    for name in learners:
        assert d1.get(name), f"no merged digest for fault-touched {name}"
        assert name in reactive


def test_smoke_matrix_shared_learner_verdicts_match_single_process():
    """Oracle verdicts at --workers 2 equal the single-process verdicts.

    The smoke slice: every shared-learner-eligible seed in the scanned range
    runs through ``run_scenario`` both ways; the verdict (ok + violation
    list) must be identical.
    """
    seeds = _eligible_seeds(2, require_merge_learners=True)
    assert seeds, "expected shared-learner seeds in the smoke range"
    for seed in seeds:
        single = run_scenario(seed, workers=1)
        sharded = run_scenario(seed, workers=2)
        assert single.ok == sharded.ok, (
            f"seed {seed}: verdicts diverge ({single.violations} vs "
            f"{sharded.violations})"
        )
        assert [(v.prop, v.detail) for v in single.violations] == [
            (v.prop, v.detail) for v in sharded.violations
        ]
        assert sharded.stats["sharded"]["merge_learners"]


def test_run_scenario_falls_back_for_ineligible_scenarios():
    for seed in SEED_RANGE:
        if shardable_components(generate_spec(seed)) is None:
            result = run_scenario(seed, workers=2)
            assert result.stats.get("sharded") is False
            return
    pytest.fail("every scanned seed was shardable, which cannot be right")


def test_workers_one_keeps_legacy_stats_shape():
    result = run_scenario(0, workers=1)
    assert "sharded" not in result.stats
