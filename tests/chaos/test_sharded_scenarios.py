"""Sharded execution of chaos scenarios (`--workers`): eligibility and
determinism.

Scenarios whose rings form process-disjoint components (zero cross-ring
traffic) opt into sharded execution; everything else must fall back to the
single-process runner with an explicit marker in its stats.
"""

from __future__ import annotations

import pytest

from repro.chaos.scenario import (
    _run_amcast_sharded,
    generate_spec,
    run_scenario,
    shardable_components,
)

#: Scanned once; the generator guarantees a fraction of disjoint multi-ring
#: scenarios, so this range always yields a handful (seed 36 is the first).
SEED_RANGE = range(0, 120)


def _eligible_seeds(count: int):
    found = []
    for seed in SEED_RANGE:
        if shardable_components(generate_spec(seed)):
            found.append(seed)
            if len(found) == count:
                break
    return found


def test_generator_produces_shardable_scenarios():
    seeds = _eligible_seeds(3)
    assert len(seeds) == 3, "expected disjoint-ring scenarios in the seed range"
    for seed in seeds:
        components = shardable_components(generate_spec(seed))
        assert len(components) >= 2
        # Components really are process-disjoint.
        spec = generate_spec(seed)
        members = [
            {m[0] for rid in comp for m in spec["rings"][rid]}
            for comp in components
        ]
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                assert not (a & b)


def test_site_faults_disqualify():
    for seed in SEED_RANGE:
        spec = generate_spec(seed)
        if any(
            event.get("action") in ("partition", "isolate")
            for event in spec.get("schedule", [])
        ):
            assert shardable_components(spec) is None or spec["family"] != "amcast"
            return
    pytest.skip("no site-fault scenario in the scanned range")


def test_sharded_verdict_and_traces_match_single_process_engine():
    """workers=2 and workers=1 produce identical verdicts and deliveries."""
    seed = _eligible_seeds(1)[0]
    spec = generate_spec(seed)
    components = shardable_components(spec)
    v1, s1, t1, d1 = _run_amcast_sharded(spec, components, workers=1)
    v2, s2, t2, d2 = _run_amcast_sharded(spec, components, workers=2)
    assert [(v.prop, v.detail) for v in v1] == [(v.prop, v.detail) for v in v2]
    assert d1 == d2, "per-learner delivery sequences differ across worker counts"
    assert t1 == t2
    assert s1["deliveries"] == s2["deliveries"]
    assert s1["sent"] == s2["sent"]
    assert d1, "sharded run delivered nothing"


def test_run_scenario_opts_in_and_reports_shards():
    seed = _eligible_seeds(1)[0]
    result = run_scenario(seed, workers=2)
    assert result.ok, result.violations
    sharded = result.stats["sharded"]
    assert sharded["workers"] == 2
    assert len(sharded["shards"]) >= 2


def test_run_scenario_falls_back_for_ineligible_scenarios():
    for seed in SEED_RANGE:
        if shardable_components(generate_spec(seed)) is None:
            result = run_scenario(seed, workers=2)
            assert result.stats.get("sharded") is False
            return
    pytest.fail("every scanned seed was shardable, which cannot be right")


def test_workers_one_keeps_legacy_stats_shape():
    result = run_scenario(0, workers=1)
    assert "sharded" not in result.stats
