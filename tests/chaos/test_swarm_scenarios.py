"""Flash-crowd chaos scenarios: a client swarm layered on the kvstore family.

The generator draws a swarm variant for kvstore scenarios (flyweight
open-loop clients whose offered load follows a flash-crowd arrival curve,
with connection churn) from a dedicated seed stream, so pre-existing draws
stay byte-for-byte identical.  These smokes pin known-swarm seeds and
require every invariant — read-your-writes under faults, store convergence —
to hold with the crowd surging and churning on top.
"""

import pytest

from repro.chaos import generate_spec, run_scenario

#: Seeds whose generated kvstore spec draws a ``swarm`` layer (verified by
#: ``test_seeds_draw_swarm``; regenerate by scanning ``generate_spec`` if the
#: draw streams ever change).
SWARM_SEEDS = [2, 19, 44, 52]


class TestSwarmScenarioFamily:
    def test_seeds_draw_swarm(self):
        for seed in SWARM_SEEDS:
            spec = generate_spec(seed)
            assert spec["family"] == "kvstore", (seed, spec["family"])
            swarm = spec.get("swarm")
            assert swarm is not None, seed
            assert swarm["users"] in (50, 200, 1000)
            assert swarm["peak_factor"] >= 3.0  # a real surge, not a blip
            assert 0.0 < swarm["flash_at"] < spec["horizon"]
            assert swarm["churn_rate"] > 0.0

    def test_swarm_is_a_family_not_a_global_switch(self):
        seen = set()
        for seed in range(120):
            spec = generate_spec(seed)
            if spec["family"] == "kvstore":
                seen.add("swarm" in spec)
        assert seen == {True, False}

    @pytest.mark.parametrize("seed", [44, 52])
    def test_swarm_scenario_upholds_every_invariant(self, seed, tmp_path):
        result = run_scenario(seed, artifacts_dir=str(tmp_path))
        assert result.ok, (
            f"seed {seed} ({result.family}): "
            + "; ".join(str(v) for v in result.violations)
        )
        swarm = result.stats["swarm"]
        assert swarm["completed"] > 0, "the crowd did no work"
        assert swarm["disconnects"] > 0, "churn never fired"

    def test_swarm_scenario_is_deterministic(self):
        first = run_scenario(52)
        second = run_scenario(52)
        assert first.ok and second.ok
        assert first.stats == second.stats
