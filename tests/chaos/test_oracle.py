"""Unit tests of the invariant oracle on hand-built traces."""

from repro.chaos.oracle import check_delivery_properties
from repro.chaos.trace import DeliveryRecord, ProcessTrace, TraceRecorder


def make_recorder(subscriptions):
    """A recorder with empty traces for the given {name: groups} map."""
    recorder = TraceRecorder()
    for name, groups in subscriptions.items():
        recorder.traces[name] = ProcessTrace(name, set(groups))
    return recorder


def deliver(recorder, name, payload, group=0, instance=0, time=0.0, incarnation=0):
    recorder.traces[name].records.append(
        DeliveryRecord(time=time, incarnation=incarnation, group=group,
                       instance=instance, payload=payload)
    )


class TestCleanTraces:
    def test_identical_streams_pass(self):
        recorder = make_recorder({"a": {0}, "b": {0}})
        for i, payload in enumerate(["m0", "m1", "m2"]):
            recorder.record_sent(payload, "a", 0, 0.0)
            deliver(recorder, "a", payload, instance=i)
            deliver(recorder, "b", payload, instance=i)
        assert check_delivery_properties(recorder) == []

    def test_disjoint_subscriptions_pass(self):
        recorder = make_recorder({"a": {0}, "b": {1}})
        recorder.record_sent("x", "a", 0, 0.0)
        recorder.record_sent("y", "b", 1, 0.0)
        deliver(recorder, "a", "x", group=0)
        deliver(recorder, "b", "y", group=1)
        assert check_delivery_properties(recorder) == []


class TestIntegrity:
    def test_duplicate_delivery_caught(self):
        recorder = make_recorder({"a": {0}})
        recorder.record_sent("m", "a", 0, 0.0)
        deliver(recorder, "a", "m", instance=0)
        deliver(recorder, "a", "m", instance=1)
        props = {v.prop for v in check_delivery_properties(recorder)}
        assert "integrity" in props

    def test_redelivery_after_restart_is_legitimate(self):
        recorder = make_recorder({"a": {0}, "b": {0}})
        recorder.record_sent("m", "a", 0, 0.0)
        deliver(recorder, "b", "m")
        deliver(recorder, "a", "m", incarnation=0)
        deliver(recorder, "a", "m", incarnation=1)  # replay after recovery
        recorder.crashed_ever.add("a")
        assert check_delivery_properties(recorder) == []

    def test_spurious_delivery_caught(self):
        recorder = make_recorder({"a": {0}})
        deliver(recorder, "a", "ghost")
        violations = check_delivery_properties(recorder, check_validity=False)
        assert any("never multicast" in v.detail for v in violations)

    def test_wrong_group_delivery_caught(self):
        recorder = make_recorder({"a": {0, 1}})
        recorder.record_sent("m", "a", 0, 0.0)
        deliver(recorder, "a", "m", group=1)
        violations = check_delivery_properties(recorder)
        assert any(v.prop == "integrity" and "group" in v.detail for v in violations)

    def test_unsubscribed_delivery_caught(self):
        recorder = make_recorder({"a": {0}})
        recorder.record_sent("m", "a", 1, 0.0)
        deliver(recorder, "a", "m", group=1)
        violations = check_delivery_properties(recorder, check_validity=False)
        assert any("does not subscribe" in v.detail for v in violations)


class TestAgreementAndValidity:
    def test_missing_delivery_at_correct_subscriber_caught(self):
        recorder = make_recorder({"a": {0}, "b": {0}})
        recorder.record_sent("m", "a", 0, 0.0)
        deliver(recorder, "a", "m")
        violations = check_delivery_properties(recorder, check_validity=False)
        assert any(v.prop == "agreement" and "b" in v.detail for v in violations)

    def test_crashed_subscriber_owes_no_agreement(self):
        recorder = make_recorder({"a": {0}, "b": {0}})
        recorder.record_sent("m", "a", 0, 0.0)
        deliver(recorder, "a", "m")
        recorder.crashed_ever.add("b")
        assert check_delivery_properties(recorder, check_validity=False) == []

    def test_crashed_deliverer_still_obligates_correct_learners(self):
        # uniform agreement: a delivery by a learner that later crashed still
        # requires every correct subscriber to deliver
        recorder = make_recorder({"a": {0}, "b": {0}})
        recorder.record_sent("m", "a", 0, 0.0)
        deliver(recorder, "a", "m")
        recorder.crashed_ever.add("a")
        violations = check_delivery_properties(recorder, check_validity=False)
        assert any(v.prop == "agreement" for v in violations)

    def test_undelivered_message_violates_validity(self):
        recorder = make_recorder({"a": {0}})
        recorder.record_sent("lost", "a", 0, 0.0)
        violations = check_delivery_properties(recorder, check_validity=True)
        assert any(v.prop == "validity" for v in violations)
        assert check_delivery_properties(recorder, check_validity=False) == []


class TestAcyclicOrder:
    def test_pairwise_disagreement_is_a_cycle(self):
        recorder = make_recorder({"a": {0}, "b": {0}})
        for payload in ("x", "y"):
            recorder.record_sent(payload, "a", 0, 0.0)
        deliver(recorder, "a", "x", instance=0)
        deliver(recorder, "a", "y", instance=1)
        deliver(recorder, "b", "y", instance=0)
        deliver(recorder, "b", "x", instance=1)
        violations = check_delivery_properties(recorder, check_validity=False)
        assert any(v.prop == "acyclic-order" for v in violations)

    def test_three_way_cycle_caught(self):
        # no pair shares two messages, yet the union order is cyclic —
        # exactly the case a pairwise check misses
        recorder = make_recorder({"a": {0, 1}, "b": {1, 2}, "c": {0, 2}})
        for payload, group in (("x", 0), ("y", 1), ("z", 2)):
            recorder.record_sent(payload, "a", group, 0.0)
        deliver(recorder, "a", "x", group=0)
        deliver(recorder, "a", "y", group=1)
        deliver(recorder, "b", "y", group=1)
        deliver(recorder, "b", "z", group=2)
        deliver(recorder, "c", "z", group=2)
        deliver(recorder, "c", "x", group=0)
        violations = check_delivery_properties(recorder, check_validity=False)
        assert any(v.prop == "acyclic-order" for v in violations)

    def test_consistent_interleavings_pass(self):
        recorder = make_recorder({"a": {0, 1}, "b": {0}, "c": {1}})
        for payload, group in (("x", 0), ("y", 1), ("z", 0)):
            recorder.record_sent(payload, "a", group, 0.0)
        deliver(recorder, "a", "x", group=0)
        deliver(recorder, "a", "y", group=1)
        deliver(recorder, "a", "z", group=0)
        deliver(recorder, "b", "x", group=0)
        deliver(recorder, "b", "z", group=0)
        deliver(recorder, "c", "y", group=1)
        assert check_delivery_properties(recorder) == []
