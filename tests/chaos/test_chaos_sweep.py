"""The full seeded chaos sweep (CI's ``-m slow`` tier includes it).

Runs 200+ random scenarios — every family, every fault kind — and requires
every invariant to hold.  A failure prints the seed and the repro artifact
path; replay locally with ``PYTHONPATH=src python -m repro.chaos --seed N``.
"""

import pytest

from repro.chaos import run_scenario

SWEEP_START = 0
SWEEP_COUNT = 208


@pytest.mark.slow
class TestChaosSweep:
    @pytest.mark.parametrize("block", range(8))
    def test_sweep_block(self, block, tmp_path):
        """26 seeds per block so a failure narrows to a small range fast."""
        size = SWEEP_COUNT // 8
        failures = []
        for seed in range(SWEEP_START + block * size, SWEEP_START + (block + 1) * size):
            result = run_scenario(seed, artifacts_dir=str(tmp_path))
            if not result.ok:
                failures.append(
                    f"seed {seed} ({result.family}): "
                    + "; ".join(str(v) for v in result.violations)
                )
        assert not failures, "\n".join(failures)
