"""Unit tests of the fault-schedule DSL."""

import pytest

from repro.chaos.schedule import FaultEvent, FaultSchedule
from repro.core import AtomicMulticast, MultiRingConfig
from repro.multiring import MultiRingProcess
from repro.sim.disk import Disk, SSD_PROFILE
from repro.sim.topology import Topology


def two_site_system(seed=3):
    topo = Topology()
    topo.add_site("a")
    topo.add_site("b")
    topo.set_link("a", "b", one_way_latency=0.001, bandwidth_bps=1e9)
    config = MultiRingConfig(rate_interval=None, checkpoint_interval=None, trim_interval=None)
    system = AtomicMulticast(topology=topo, config=config, seed=seed)
    procs = [
        MultiRingProcess(system.env, f"n{i}", site="a" if i < 2 else "b")
        for i in range(4)
    ]
    system.create_ring(0, [(p.name, "pal") for p in procs])
    return system, procs


class TestDslBasics:
    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError):
            FaultSchedule().add(1.0, "meteor_strike", site="a")

    def test_events_sorted_by_time(self):
        schedule = FaultSchedule().crash(2.0, "x").restart(3.0, "x").partition(1.0, "a", "b")
        assert [e.action for e in schedule] == ["partition", "crash", "restart"]
        assert schedule.end_time == 3.0

    def test_round_trips_through_dicts(self):
        schedule = (
            FaultSchedule()
            .crash(0.5, "n1")
            .partition(0.7, "a", "b")
            .disk_spike(0.9, factor=10.0, match="n2")
            .restart(1.1, "n1")
            .heal(1.2, "a", "b")
        )
        rebuilt = FaultSchedule.from_dicts(schedule.to_dicts())
        assert rebuilt.to_dicts() == schedule.to_dicts()
        assert len(rebuilt) == 5


class TestExecution:
    def test_crash_and_restart_fire_on_the_sim_clock(self):
        system, procs = two_site_system()
        schedule = FaultSchedule().crash(0.5, "n0").restart(1.0, "n0")
        schedule.apply(system)
        system.start()
        system.run(until=0.7)
        assert not procs[0].alive
        assert "n0" not in system.ring(0)
        system.run(until=1.2)
        assert procs[0].alive
        assert "n0" in system.ring(0)
        assert [action for _, action, _ in schedule.executed] == ["crash", "restart"]

    def test_crash_of_dead_process_is_a_noop(self):
        system, procs = two_site_system()
        schedule = FaultSchedule().crash(0.2, "n0").crash(0.3, "n0").restart(0.5, "n0")
        schedule.apply(system)
        system.start()
        system.run(until=1.0)
        assert procs[0].alive

    def test_partition_and_heal_toggle_network_faults(self):
        system, _ = two_site_system()
        schedule = FaultSchedule().partition(0.2, "a", "b").heal(0.6, "a", "b")
        schedule.apply(system)
        system.start()
        system.run(until=0.4)
        assert system.network.has_active_faults
        assert ("a", "b") in system.network.cut_links
        system.run(until=0.8)
        assert not system.network.has_active_faults

    def test_isolation_toggles_site_faults(self):
        system, _ = two_site_system()
        schedule = FaultSchedule().isolate(0.2, "b").rejoin(0.5, "b")
        schedule.apply(system)
        system.start()
        system.run(until=0.3)
        assert "b" in system.network.isolated_sites
        system.run(until=0.6)
        assert not system.network.isolated_sites

    def test_disk_spike_targets_matching_devices(self):
        system, _ = two_site_system()
        fast = Disk(system.env, SSD_PROFILE, name="n0.wal.disk")
        other = Disk(system.env, SSD_PROFILE, name="n1.wal.disk")
        schedule = (
            FaultSchedule()
            .disk_spike(0.1, factor=8.0, match="n0")
            .disk_restore(0.5, match="n0")
        )
        schedule.apply(system)
        system.start()
        system.run(until=0.2)
        assert fast.slowdown == 8.0
        assert other.slowdown == 1.0
        system.run(until=0.6)
        assert fast.slowdown == 1.0

    def test_disk_spike_slows_writes_down(self):
        system, _ = two_site_system()
        disk = Disk(system.env, SSD_PROFILE, name="d")
        healthy = disk.write(1024) - system.env.now
        spiked_disk = Disk(system.env, SSD_PROFILE, name="d2")
        spiked_disk.set_slowdown(10.0)
        t0 = system.env.now
        assert spiked_disk.write(1024) - t0 == pytest.approx(10 * healthy)
        spiked_disk.clear_slowdown()
        assert spiked_disk.slowdown == 1.0

    def test_invalid_slowdown_rejected(self):
        system, _ = two_site_system()
        disk = Disk(system.env, SSD_PROFILE, name="d")
        with pytest.raises(ValueError):
            disk.set_slowdown(0.0)

    def test_environment_registers_disks(self):
        system, _ = two_site_system()
        before = len(system.env.disks())
        disk = Disk(system.env, SSD_PROFILE, name="registered")
        assert disk in system.env.disks()
        assert len(system.env.disks()) == before + 1

    def test_remove_and_add_to_ring(self):
        system, procs = two_site_system()
        schedule = (
            FaultSchedule()
            .add(0.2, "remove_from_ring", ring_id=0, process="n3")
            .add(0.6, "add_to_ring", ring_id=0, process="n3", roles="pal")
        )
        schedule.apply(system)
        system.start()
        system.run(until=0.4)
        assert "n3" not in system.ring(0)
        system.run(until=0.8)
        assert "n3" in system.ring(0)

    def test_last_acceptor_is_never_removed(self):
        system, procs = two_site_system()
        for name in ("n1", "n2", "n3"):
            system.remove_from_ring(0, name)
        schedule = FaultSchedule().add(0.1, "remove_from_ring", ring_id=0, process="n0")
        schedule.apply(system)
        system.start()
        system.run(until=0.5)
        assert "n0" in system.ring(0)
