"""Seeded chaos scenarios: smoke matrix, determinism, repro artifacts.

The full 200-seed sweep lives in ``test_chaos_sweep.py`` (marked slow); this
module keeps a fast cross-family subset in tier 1 so every PR exercises the
harness end to end.
"""

import json

import pytest

from repro.chaos import generate_spec, run_scenario

#: Fast smoke subset: spans all three families (amcast/kvstore/dlog) and all
#: fault kinds at the generator's default weights.
SMOKE_SEEDS = list(range(0, 24))


class TestScenarioGeneration:
    def test_spec_is_deterministic_in_the_seed(self):
        assert generate_spec(123) == generate_spec(123)

    def test_different_seeds_differ(self):
        assert generate_spec(1) != generate_spec(2)

    def test_specs_are_json_serialisable(self):
        for seed in range(10):
            json.dumps(generate_spec(seed))

    def test_all_families_appear_in_the_smoke_range(self):
        families = {generate_spec(seed)["family"] for seed in SMOKE_SEEDS}
        assert families == {"amcast", "kvstore", "dlog"}

    def test_schedules_heal_everything_they_break(self):
        for seed in range(40):
            spec = generate_spec(seed)
            events = spec["schedule"]
            crashed = [e["params"]["process"] for e in events if e["action"] == "crash"]
            restarted = [e["params"]["process"] for e in events if e["action"] == "restart"]
            assert sorted(crashed) == sorted(restarted), f"seed {seed}"
            assert len([e for e in events if e["action"] == "partition"]) == len(
                [e for e in events if e["action"] == "heal"]
            ), f"seed {seed}"
            assert len([e for e in events if e["action"] == "isolate"]) == len(
                [e for e in events if e["action"] == "rejoin"]
            ), f"seed {seed}"


class TestScenarioSmoke:
    @pytest.mark.parametrize("seed", SMOKE_SEEDS)
    def test_invariants_hold(self, seed, tmp_path):
        result = run_scenario(seed, artifacts_dir=str(tmp_path))
        assert result.ok, (
            f"seed {seed} ({result.family}) violated: "
            + "; ".join(str(v) for v in result.violations)
        )

    def test_scenarios_actually_deliver_traffic(self, tmp_path):
        result = run_scenario(0, artifacts_dir=str(tmp_path))
        assert result.stats["sent"] > 0
        assert all(count > 0 for count in result.stats["deliveries"].values())

    def test_scenarios_actually_inject_faults(self):
        fault_counts = [generate_spec(seed)["schedule"] for seed in SMOKE_SEEDS]
        assert all(len(events) > 0 for events in fault_counts)

    def test_same_seed_reproduces_identical_outcome(self, tmp_path):
        first = run_scenario(3, artifacts_dir=str(tmp_path))
        second = run_scenario(3, artifacts_dir=str(tmp_path))
        assert first.stats == second.stats
        assert first.family == second.family
