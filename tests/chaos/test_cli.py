"""Smoke tests of the ``python -m repro.chaos`` entry point.

The CLI is the operator's chaos interface: it must exit non-zero when any
scenario violates the invariant oracle and print a one-line end-of-run
summary naming the failed seeds, so CI logs and humans can triage without
parsing per-seed output.
"""

from __future__ import annotations

from repro.chaos import scenario as scenario_module
from repro.chaos.oracle import Violation
from repro.chaos.scenario import ScenarioResult, main


def _fake_run(results_by_seed):
    def run_scenario(seed, artifacts_dir=None, workers=1):
        return results_by_seed[seed]

    return run_scenario


def _ok(seed):
    return ScenarioResult(seed=seed, family="amcast", violations=[], stats={"sent": 10})


def _bad(seed):
    return ScenarioResult(
        seed=seed,
        family="amcast",
        violations=[Violation("agreement", f"seed {seed} lost a delivery")],
        stats={"sent": 10},
        artifact_path=f"/tmp/chaos-{seed}.json",
    )


def test_all_pass_exits_zero_with_summary(monkeypatch, capsys):
    monkeypatch.setattr(
        scenario_module, "run_scenario", _fake_run({0: _ok(0), 1: _ok(1)})
    )
    exit_code = main(["--seed", "0", "--count", "2"])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "chaos: 2/2 scenario(s) passed" in out


def test_oracle_failure_exits_nonzero_with_one_line_summary(monkeypatch, capsys):
    monkeypatch.setattr(
        scenario_module,
        "run_scenario",
        _fake_run({5: _ok(5), 6: _bad(6), 7: _ok(7)}),
    )
    exit_code = main(["--seed", "5", "--count", "3"])
    out = capsys.readouterr().out
    assert exit_code == 1
    assert "FAIL seed=6" in out
    assert "agreement" in out
    assert "artifact: /tmp/chaos-6.json" in out
    summary = [line for line in out.splitlines() if line.startswith("chaos:")]
    assert len(summary) == 1
    assert "1/3 scenario(s) VIOLATED the oracle" in summary[0]
    assert "[6]" in summary[0]


def test_real_seed_smoke_passes_end_to_end(capsys):
    # One real (fast, single-process) scenario through the actual CLI path.
    exit_code = main(["--seed", "0", "--count", "1"])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "PASS seed=0" in out
    assert "chaos: 1/1 scenario(s) passed" in out
