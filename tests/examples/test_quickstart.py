"""The README quickstart must run green, not aspirationally.

Executes ``examples/quickstart.py`` exactly the way the README tells a new
contributor to (``PYTHONPATH=src python examples/quickstart.py``) and asserts
its deliveries and its closing claim.
"""

from __future__ import annotations

import os
import subprocess
import sys

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))


def test_quickstart_runs_green_and_output_is_asserted():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    proc = subprocess.run(
        [sys.executable, os.path.join(REPO_ROOT, "examples", "quickstart.py")],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    out = proc.stdout
    # The two-group subscribers deliver the interleaved sequence a0 b0 a1 ...
    assert "[(0, 'a0'), (1, 'b0'), (0, 'a1')" in out
    # The single-group subscribers see exactly their group, in order.
    assert "[(0, 'a0'), (0, 'a1'), (0, 'a2'), (0, 'a3'), (0, 'a4')]" in out
    assert "[(1, 'b0'), (1, 'b1'), (1, 'b2'), (1, 'b3'), (1, 'b4')]" in out
    assert "atomic multicast properties hold" in out
