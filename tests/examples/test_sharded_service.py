"""The sharded-service quickstart must run green, not aspirationally.

Executes ``examples/sharded_service.py`` exactly the way the README tells an
operator to (``PYTHONPATH=src python examples/sharded_service.py --workers
2``) and asserts its closing claims: the reactive merge matched the offline
replay, merged state spanned both partitions and reads were answered from
live merged state.
"""

from __future__ import annotations

import os
import subprocess
import sys

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))


def test_sharded_service_quickstart_runs_green():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    proc = subprocess.run(
        [
            sys.executable,
            os.path.join(REPO_ROOT, "examples", "sharded_service.py"),
            "--workers", "2",
        ],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        timeout=180,
    )
    assert proc.returncode == 0, proc.stderr
    out = proc.stdout
    # Reads against the live merged state found both partitions' keys.
    assert "read 'p0-k000' from merged state: found=True" in out
    assert "read 'p1-k000' from merged state: found=True" in out
    # The streaming merge stayed anchored to the offline replay.
    assert "reactive merge matches offline replay: True" in out
    assert "merged state spans both partitions: True" in out
    assert "quickstart OK" in out
    # Freshness accounting was recorded for every applied command.
    assert "merge freshness: mean" in out
