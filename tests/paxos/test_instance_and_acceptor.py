"""Tests of the consensus core: instance rules, ledgers and acceptor state."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.paxos.acceptor import AcceptorState
from repro.paxos.instance import AcceptorInstance, InstanceLedger
from repro.paxos.messages import ProposalValue, SKIP
from repro.sim.actor import Environment
from repro.sim.disk import StorageMode


def value(payload=b"v", size=64):
    return ProposalValue(payload=payload, size_bytes=size)


class TestAcceptorInstance:
    def test_promise_granted_for_higher_ballot(self):
        instance = AcceptorInstance(0)
        promise = instance.receive_phase1a(5)
        assert promise.granted and promise.ballot == 5
        assert not instance.receive_phase1a(3).granted
        assert instance.receive_phase1a(7).granted

    def test_accept_requires_ballot_at_least_promised(self):
        instance = AcceptorInstance(0)
        instance.receive_phase1a(5)
        assert not instance.receive_phase2a(3, value()).accepted
        assert instance.receive_phase2a(5, value()).accepted
        assert instance.has_accepted

    def test_promise_reports_previously_accepted_value(self):
        instance = AcceptorInstance(0)
        v = value(b"first")
        instance.receive_phase2a(1, v)
        promise = instance.receive_phase1a(10)
        assert promise.granted
        assert promise.accepted_ballot == 1
        assert promise.accepted_value is v

    def test_accept_updates_promised_ballot(self):
        instance = AcceptorInstance(0)
        instance.receive_phase2a(4, value())
        assert not instance.receive_phase1a(4).granted
        assert instance.receive_phase1a(5).granted

    @given(st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_accepted_ballot_never_decreases(self, ballots):
        """Safety: an acceptor's accepted ballot is monotonic."""
        instance = AcceptorInstance(0)
        highest = -1
        for ballot in ballots:
            result = instance.receive_phase2a(ballot, value())
            if result.accepted:
                assert ballot >= highest
                highest = ballot
            assert instance.accepted_ballot >= highest


class TestInstanceLedger:
    def test_allocation_is_sequential(self):
        ledger = InstanceLedger()
        assert ledger.allocate() == 0
        assert ledger.allocate() == 1
        assert ledger.allocate_many(3) == [2, 3, 4]
        assert ledger.next_instance == 5

    def test_observe_instance_advances_allocation(self):
        ledger = InstanceLedger()
        ledger.observe_instance(10)
        assert ledger.allocate() == 11

    def test_decide_and_contiguity(self):
        ledger = InstanceLedger()
        assert ledger.decide(0, value())
        assert ledger.decide(2, value())
        assert ledger.highest_contiguous_decided == 0
        assert ledger.decide(1, value())
        assert ledger.highest_contiguous_decided == 2
        assert not ledger.decide(1, value())  # duplicate

    def test_undecided_below(self):
        ledger = InstanceLedger()
        ledger.decide(0, value())
        ledger.decide(3, value())
        assert ledger.undecided_below(4) == [1, 2]

    def test_decisions_in_order_and_forget(self):
        ledger = InstanceLedger()
        for i in (3, 1, 2):
            ledger.decide(i, value(str(i).encode()))
        assert [i for i, _ in ledger.decisions_in_order()] == [1, 2, 3]
        assert ledger.forget_up_to(2) == 2
        assert ledger.decided_count == 1

    def test_negative_allocation_rejected(self):
        with pytest.raises(ValueError):
            InstanceLedger().allocate_many(-1)


class TestAcceptorState:
    def _acceptor(self, mode=StorageMode.IN_MEMORY):
        env = Environment()
        return env, AcceptorState(env, "a0", ring_id=0, storage_mode=mode)

    def test_vote_is_logged_and_decidable(self):
        env, acceptor = self._acceptor(StorageMode.SYNC_SSD)
        result = acceptor.receive_phase2(0, 1, value())
        env.simulator.run()
        assert result.accepted
        assert 0 in acceptor.log
        acceptor.record_decision(0, value())
        assert acceptor.is_decided(0)

    def test_skip_votes_bypass_the_device(self):
        env, acceptor = self._acceptor(StorageMode.SYNC_HDD)
        skip = ProposalValue(payload=SKIP, size_bytes=0)
        acceptor.receive_phase2_range(0, 9, 1, skip)
        env.simulator.run()
        assert acceptor.log.disk.write_count == 0
        assert acceptor.promised_ballot(5) == 1

    def test_phase1_window_promise_covers_untouched_instances(self):
        env, acceptor = self._acceptor()
        assert acceptor.receive_phase1a(0, 1 << 20, ballot=3)
        assert acceptor.promised_ballot(12345) == 3
        # lower or equal ballots are refused afterwards
        assert not acceptor.receive_phase1a(0, 1 << 20, ballot=3)
        assert not acceptor.receive_phase1a(0, 1 << 20, ballot=2)
        assert acceptor.receive_phase1a(0, 1 << 20, ballot=5)

    def test_phase1_window_promotes_existing_instances(self):
        env, acceptor = self._acceptor()
        acceptor.receive_phase2(0, 1, value(b"old"))
        acceptor.receive_phase1a(0, 100, ballot=7)
        # the instance that already voted now refuses ballots below 7
        assert not acceptor.receive_phase2(0, 3, value(b"stale")).accepted
        assert acceptor.receive_phase2(0, 7, value(b"new")).accepted

    def test_retransmission_ranges(self):
        env, acceptor = self._acceptor()
        for i in range(10):
            acceptor.receive_phase2(i, 1, value(payload=i))
            acceptor.record_decision(i, value(payload=i))
        assert [i for i, _ in acceptor.decided_between(2, 5)] == [2, 3, 4, 5]
        assert [i for i, _ in acceptor.decided_from(7)] == [7, 8, 9]
        assert acceptor.highest_decided == 9

    def test_trim_discards_state_and_refuses_old_votes(self):
        env, acceptor = self._acceptor()
        for i in range(10):
            acceptor.receive_phase2(i, 1, value())
            acceptor.record_decision(i, value())
        acceptor.trim(5)
        assert acceptor.trimmed_up_to == 5
        assert acceptor.decided_between(0, 9) == acceptor.decided_between(6, 9)
        assert not acceptor.receive_phase2(3, 2, value()).accepted
        assert not acceptor.is_decided(3)
        # trimming backwards is a no-op
        assert acceptor.trim(2) == 0

    def test_crash_and_recover_from_persistent_log(self):
        env, acceptor = self._acceptor(StorageMode.SYNC_SSD)
        acceptor.receive_phase2(0, 3, value(b"keep"))
        env.simulator.run()
        acceptor.crash()
        assert acceptor.accepted_value(0) is None
        restored = acceptor.recover_from_log()
        assert restored == 1
        assert acceptor.accepted_value(0).payload == b"keep"

    def test_crash_with_in_memory_storage_loses_votes(self):
        env, acceptor = self._acceptor(StorageMode.IN_MEMORY)
        acceptor.receive_phase2(0, 1, value())
        acceptor.crash()
        assert acceptor.recover_from_log() == 0

    def test_slot_overflow_falls_back_to_log_only(self):
        env = Environment()
        acceptor = AcceptorState(env, "a0", ring_id=0, slot_count=2)
        for i in range(5):
            acceptor.record_decision(i, value())
        # decisions beyond the slot capacity are still retransmittable
        assert len(acceptor.decided_from(0)) == 5
