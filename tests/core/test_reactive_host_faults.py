"""``ReactiveReplicaHost`` under delivery gaps: partition-stall then heal.

A partitioned producer stops covering its rings, the host's joint watermark
stalls at the last honest mark, and — once barriers cover the ring again —
the backlog merges and the state converges to the offline
``replay_streams`` anchor.  The stall is an availability incident, not
merge latency: the per-command accounting must exclude the stall window,
and the window itself is reported separately.
"""

import pytest

from repro.core.client import Command
from repro.core.smr import ReactiveReplicaHost
from repro.kvstore.replica import MRPStoreReplica
from repro.multiring.merge import replay_streams
from repro.paxos.messages import ProposalValue
from repro.sim.actor import Environment


def insert(ring, key, created_at):
    command = Command(
        op="insert", args=(key, None, 64), group_id=ring,
        size_bytes=64, created_at=created_at,
    )
    return ProposalValue(payload=command, size_bytes=64)


@pytest.fixture
def host():
    env = Environment()
    replica = MRPStoreReplica(env, "merged", respond_to_clients=False)
    return ReactiveReplicaHost(replica, [0, 1], messages_per_round=1)


def test_partition_stall_then_heal_converges_to_offline_anchor(host):
    streams = {
        0: [(i, insert(0, f"a{i}", 0.5)) for i in range(4)],
        1: [(i, insert(1, f"b{i}", 0.5)) for i in range(4)],
    }
    # Barrier 1: both rings covered, one entry each.
    host.ingest(
        {0: streams[0][:1], 1: streams[1][:1]}, watermark=1.0, covered=[0, 1]
    )
    assert host.watermark == 1.0
    assert not host.stalled
    # Barriers 2 and 3: ring 1's producer is partitioned away — barriers
    # arrive covering ring 0 only.  The joint watermark must stall at the
    # last honest mark instead of over-promising freshness.
    host.ingest({0: streams[0][1:2]}, watermark=2.0, covered=[0])
    host.ingest({0: streams[0][2:3]}, watermark=3.0, covered=[0])
    assert host.stalled
    assert host.watermark == 1.0
    # Ring 0 deliveries queue at the round-robin gate behind ring 1.
    applied_mid = host.commands_applied
    # Barrier 4: the partition heals and ring 1's backlog arrives.
    applied = host.ingest(
        {0: streams[0][3:], 1: streams[1][1:]}, watermark=4.0, covered=[0, 1]
    )
    assert applied > 0
    assert not host.stalled
    assert host.watermark == 4.0
    # The merged output is exactly the offline anchor.
    assert host.deliveries == replay_streams(streams)
    # ...and the replica's store holds every key from both rings.
    store = host.replica.store
    for i in range(4):
        assert store.read(f"a{i}") is not None
        assert store.read(f"b{i}") is not None
    assert host.commands_applied == 8 >= applied_mid


def test_stall_window_is_recorded_and_excluded_from_latency(host):
    streams = {
        0: [(0, insert(0, "a0", 0.5))],
        1: [(0, insert(1, "b0", 0.5))],
    }
    # Barrier 1 covers both rings (ring 1 idle but reachable); the
    # partition hits before barrier 2.
    host.ingest({0: streams[0]}, watermark=1.0, covered=[0, 1])
    host.ingest({}, watermark=2.0, covered=[0])
    host.ingest({}, watermark=3.0, covered=[0])
    assert host.stall_windows == []  # still open, not yet closed
    host.ingest({1: streams[1]}, watermark=4.0, covered=[0, 1])
    # The window opened at the stalled joint mark (1.0) and closed when the
    # healing barrier caught the joint watermark up (4.0).
    assert host.stall_windows == [(1.0, 4.0)]
    stats = host.latency_stats()
    assert stats["stall_count"] == 1.0
    assert stats["stalled_ms"] == pytest.approx(3000.0)
    # Both commands (created at 0.5, readable at watermark 4.0) would show
    # 3.5 s of "merge latency" — 3.0 s of which is the stall.  The
    # accounting must subtract the overlap and report 0.5 s.
    assert stats["count"] == 2.0
    assert stats["mean_ms"] == pytest.approx(500.0)


def test_unfaulted_ingest_records_no_stall(host):
    streams = {
        0: [(0, insert(0, "a0", 0.2))],
        1: [(0, insert(1, "b0", 0.2))],
    }
    host.ingest(streams, watermark=1.0)
    host.ingest({}, watermark=2.0)
    assert host.stall_windows == []
    assert not host.stalled
    stats = host.latency_stats()
    assert stats["stall_count"] == 0.0
    assert stats["mean_ms"] == pytest.approx(800.0)
