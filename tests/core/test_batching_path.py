"""The batching path: shared unpacker, packed metadata, delay trigger, SMR.

Covers the end-to-end batching fixes: the recursive unpacker in
``repro.core.packing`` that every delivery-path consumer routes through, the
coordinator's size-or-timeout batch assembly, packed-value metadata
preservation across mixed proposers, the O(1) ``CommandBatcher`` byte
accounting, and ``StateMachineReplica`` handling ``PackedValues`` payloads —
including a real kvstore PUT/GET round-trip with ``batching_enabled=True``.
"""

import random

import pytest

from repro.core import AtomicMulticast, MultiRingConfig
from repro.core.client import Command, CommandBatch, CommandBatcher
from repro.core.packing import (
    PackedValues,
    iter_commands,
    iter_payloads,
    iter_values,
    packed_proposal_ids,
)
from repro.kvstore import MRPStoreService
from repro.kvstore.client import MRPStoreCommands
from repro.kvstore.partitioning import HashPartitioner
from repro.net.message import ClientRequest, ClientResponse
from repro.paxos.messages import SKIP, ProposalValue
from repro.ringpaxos.coordinator import CoordinatorState, InstanceBatchPolicy
from repro.sim.actor import Actor


def _value(payload, size=64, proposer="p0", proposal_id=1, created_at=0.0):
    return ProposalValue(
        payload=payload, size_bytes=size, proposer=proposer,
        proposal_id=proposal_id, created_at=created_at,
    )


def _pack(*values):
    return _value(PackedValues(values=list(values)),
                  size=sum(v.size_bytes for v in values))


class TestSharedUnpacker:
    def test_plain_value_yields_itself(self):
        v = _value("x")
        assert list(iter_values(v)) == [v]
        assert list(iter_payloads(v.payload)) == ["x"]

    def test_pack_flattens_to_leaves_in_order(self):
        a, b = _value("a", proposal_id=1), _value("b", proposer="p1", proposal_id=2)
        packed = _pack(a, b)
        assert list(iter_values(packed)) == [a, b]
        assert list(iter_payloads(packed.payload)) == ["a", "b"]

    def test_nested_packs_flatten_recursively(self):
        a, b, c = _value("a"), _value("b"), _value("c")
        nested = _pack(_pack(a, b), c)
        assert [v.payload for v in iter_values(nested)] == ["a", "b", "c"]
        assert list(iter_payloads(nested.payload)) == ["a", "b", "c"]

    def test_skips_inside_packs_are_dropped_from_payloads(self):
        packed = _pack(_value(SKIP), _value("kept"))
        assert list(iter_payloads(packed.payload)) == ["kept"]
        # iter_values keeps the skip leaf (learner accounting needs it)
        assert len(list(iter_values(packed))) == 2

    def test_iter_commands_opens_command_batches(self):
        c1 = Command(op="put", args=("k1",))
        c2 = Command(op="put", args=("k2",))
        c3 = Command(op="get", args=("k1",))
        batch = CommandBatch(group_id=0, commands=[c1, c2])
        packed = _pack(_value(batch), _value(c3), _value(SKIP))
        assert list(iter_commands(packed.payload)) == [c1, c2, c3]
        assert list(iter_commands(c3)) == [c3]
        assert list(iter_commands("opaque")) == []

    def test_packed_proposal_ids_lists_every_leaf(self):
        a = _value("a", proposer="p0", proposal_id=7)
        b = _value("b", proposer="p1", proposal_id=9)
        packed = _pack(a, b)
        assert packed_proposal_ids(packed) == [("p0", 7), ("p1", 9)]
        assert packed_proposal_ids(a) == [("p0", 7)]


class TestPackedMetadata:
    def _coordinator(self, max_bytes=256, max_delay=0.0):
        state = CoordinatorState(
            ring_id=0,
            batch_policy=InstanceBatchPolicy(
                enabled=True, max_bytes=max_bytes, max_delay=max_delay
            ),
        )
        state.record_promise("a0", quorum=1)
        return state

    def test_mixed_proposer_pack_keeps_all_proposal_ids(self):
        state = self._coordinator(max_bytes=256)
        v1 = _value("a", size=128, proposer="p0", proposal_id=11, created_at=0.5)
        v2 = _value("b", size=128, proposer="p1", proposal_id=22, created_at=0.3)
        state.enqueue(v1)
        state.enqueue(v2)
        [(instance, packed)] = state.next_assignments()
        assert isinstance(packed.payload, PackedValues)
        assert packed.payload.proposal_ids == (("p0", 11), ("p1", 22))
        assert packed.payload.created_ats == (0.5, 0.3)
        # The wrapper mirrors the first constituent but the leaves are intact.
        assert packed.created_at == 0.3
        inner = list(iter_values(packed))
        assert [(v.proposer, v.proposal_id) for v in inner] == [("p0", 11), ("p1", 22)]
        assert [v.created_at for v in inner] == [0.5, 0.3]


class TestDelayTriggerAssembly:
    def test_partial_batch_held_without_force(self):
        state = TestPackedMetadata._coordinator(self, max_bytes=256)
        state.enqueue(_value("a", size=100))
        assert state.next_assignments(force=False) == []
        assert state.has_pending()

    def test_full_batches_emit_without_force(self):
        state = TestPackedMetadata._coordinator(self, max_bytes=256)
        for i in range(3):
            state.enqueue(_value(f"v{i}", size=128))
        assignments = state.next_assignments(force=False)
        # Two values fill max_bytes; the trailing one is held.
        assert len(assignments) == 1
        assert len(assignments[0][1].payload.values) == 2
        assert state.has_pending()

    def test_force_drains_the_held_remainder(self):
        state = TestPackedMetadata._coordinator(self, max_bytes=256)
        state.enqueue(_value("a", size=100))
        state.next_assignments(force=False)
        [(instance, value)] = state.next_assignments(force=True)
        assert value.payload == "a"
        assert not state.has_pending()

    def test_oversized_single_value_emits_immediately(self):
        state = TestPackedMetadata._coordinator(self, max_bytes=256)
        state.enqueue(_value("big", size=512))
        [(instance, value)] = state.next_assignments(force=False)
        assert value.payload == "big"


class TestCommandBatcherRunningTotal:
    def test_behavior_identical_to_resummed_reference(self):
        """Random add/flush program: O(1) totals match a re-sum reference."""
        rng = random.Random(42)
        batcher = CommandBatcher(max_bytes=2500)
        reference = {g: [] for g in range(3)}  # group -> pending sizes
        for i in range(500):
            group = rng.randrange(3)
            size = rng.choice([100, 700, 1300, 2600])
            batch = batcher.add(
                Command(op="op", args=(i,), group_id=group, size_bytes=size)
            )
            reference[group].append(size)
            if sum(reference[group]) >= 2500:
                assert batch is not None
                assert [c.size_bytes for c in batch.commands] == reference[group]
                reference[group] = []
            else:
                assert batch is None
            assert batcher.pending_bytes(group) == sum(reference[group])
            assert batcher.pending_count(group) == len(reference[group])
        for group in range(3):
            batch = batcher.flush_group(group)
            sizes = reference[group]
            assert (batch is None) == (not sizes)
            if batch is not None:
                assert [c.size_bytes for c in batch.commands] == sizes
            assert batcher.pending_bytes(group) == 0


class _ProbeClient(Actor):
    """Issues one PUT then one GET against a store frontend; records replies."""

    def __init__(self, env, name, frontend, commands):
        super().__init__(env, name)
        self._frontend = frontend
        self._commands = commands
        self.responses = []

    def on_start(self):
        self._send(self._commands.insert("probe-key", 64))

    def _send(self, command):
        command.client = self.name
        command.created_at = self.now
        self._awaiting = command.command_id
        self.send(
            self._frontend,
            ClientRequest(payload_bytes=command.size_bytes, client=self.name,
                          command=command, created_at=self.now),
        )

    def on_message(self, src, message):
        if not isinstance(message, ClientResponse):
            return
        if message.request_id != self._awaiting:
            return  # duplicate response from the other replica
        self._awaiting = None
        self.responses.append(message.result)
        if len(self.responses) == 1:
            self._send(self._commands.read("probe-key"))


class TestSMRPackedValues:
    def test_kvstore_round_trip_with_batching_enabled(self):
        """A PUT/GET round-trips through a real replica with batching on."""
        config = MultiRingConfig(
            batching_enabled=True,
            batch_max_bytes=4096,
            batch_max_delay=0.0005,
            rate_interval=None, checkpoint_interval=None, trim_interval=None,
        )
        system = AtomicMulticast(seed=5, config=config)
        service = MRPStoreService(
            system,
            partition_groups=[0],
            acceptors_per_partition=3,
            replicas_per_partition=2,
            global_ring_id=None,
            config=config,
        )
        commands = MRPStoreCommands(HashPartitioner([0]))
        frontend = service.frontend_map()[0]
        client = _ProbeClient(system.env, "probe", frontend, commands)
        system.start()
        system.run(until=3.0)
        assert len(client.responses) == 2
        assert client.responses[0]["value"]["inserted"]
        assert client.responses[1]["value"]["found"]
        for replica in service.replicas[0]:
            assert replica.store.read("probe-key") is not None

    def test_direct_packed_delivery_applies_every_command(self):
        """Recovery-style direct injection of a PackedValues payload."""
        from repro.kvstore import MRPStoreReplica

        config = MultiRingConfig(rate_interval=None, checkpoint_interval=None,
                                 trim_interval=None)
        system = AtomicMulticast(seed=1, config=config)
        replica = MRPStoreReplica(system.env, "r0", config=config)
        put = Command(op="insert", args=("k", "v", 100), size_bytes=100)
        get = Command(op="read", args=("k",), size_bytes=16)
        batch = CommandBatch(group_id=0, commands=[put])
        packed = _pack(_value(batch, size=100), _value(get, size=16), _value(SKIP))
        before = replica.commands_applied
        replica.on_deliver(0, 0, packed)
        assert replica.commands_applied == before + 2
        assert replica.store.read("k") is not None
