"""Tests of the deployment configuration and client building blocks."""

import pytest

from repro.core.client import Command, CommandBatch, CommandBatcher
from repro.core.config import MultiRingConfig, global_config, local_config
from repro.core.amcast import parse_roles
from repro.sim.disk import StorageMode


class TestMultiRingConfig:
    def test_paper_presets(self):
        local = local_config()
        assert local.messages_per_round == 1
        assert local.rate_interval == pytest.approx(0.005)
        assert local.max_rate == 9000.0
        remote = global_config()
        assert remote.rate_interval == pytest.approx(0.020)
        assert remote.max_rate == 2000.0

    def test_rate_leveler_derivation(self):
        config = MultiRingConfig(rate_interval=0.01, max_rate=500)
        leveler = config.rate_leveler()
        assert leveler.expected_per_interval == pytest.approx(5.0)
        assert MultiRingConfig(rate_interval=None).rate_leveler() is None

    def test_ring_node_config_carries_storage_and_batching(self):
        config = MultiRingConfig(storage_mode=StorageMode.SYNC_SSD, batching_enabled=True)
        node_config = config.ring_node_config()
        assert node_config.storage_mode is StorageMode.SYNC_SSD
        assert node_config.batch_policy.enabled

    def test_with_copies(self):
        config = MultiRingConfig()
        changed = config.with_(max_rate=123.0)
        assert changed.max_rate == 123.0
        assert config.max_rate == 9000.0


class TestParseRoles:
    def test_parse_all_roles(self):
        member = parse_roles("n1", "pal")
        assert member.proposer and member.acceptor and member.learner

    def test_parse_subset(self):
        member = parse_roles("n1", "l")
        assert member.learner and not member.acceptor and not member.proposer

    def test_unknown_letter_rejected(self):
        with pytest.raises(ValueError):
            parse_roles("n1", "px")


class TestCommandBatcher:
    def _command(self, group=0, size=1000):
        return Command(op="update", args=("k", None, size), group_id=group, size_bytes=size)

    def test_batches_by_group(self):
        batcher = CommandBatcher(max_bytes=2500)
        assert batcher.add(self._command(group=0)) is None
        assert batcher.add(self._command(group=1)) is None
        assert batcher.pending_count(0) == 1
        full = batcher.add(self._command(group=0))
        assert full is None
        full = batcher.add(self._command(group=0))
        assert isinstance(full, CommandBatch)
        assert full.group_id == 0
        assert len(full) == 3

    def test_flush_group_and_all(self):
        batcher = CommandBatcher(max_bytes=10_000)
        batcher.add(self._command(group=0))
        batcher.add(self._command(group=1))
        batch = batcher.flush_group(0)
        assert len(batch) == 1
        assert batcher.flush_group(0) is None
        rest = batcher.flush_all()
        assert len(rest) == 1 and rest[0].group_id == 1

    def test_batch_size_accounting(self):
        batch = CommandBatch(group_id=0, commands=[self._command(size=100), self._command(size=200)])
        assert batch.size_bytes == 300
        assert len(list(iter(batch))) == 2

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            CommandBatcher(max_bytes=0)


class TestCommandDefaults:
    def test_commands_get_unique_ids(self):
        a, b = Command(op="read"), Command(op="read")
        assert a.command_id != b.command_id

    def test_default_sizes(self):
        command = Command(op="read", args=("k",), group_id=2)
        assert command.size_bytes > 0
        assert command.response_size > 0
