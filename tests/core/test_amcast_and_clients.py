"""Tests of the deployment façade and the closed/open-loop clients."""

import pytest

from repro.core import AtomicMulticast, MultiRingConfig
from repro.core.client import ClosedLoopClient, Command, OpenLoopClient
from repro.core.smr import ProposerFrontend, StateMachineReplica

from tests.conftest import RecordingProcess


class CountingReplica(StateMachineReplica):
    """A replica applying counter commands (used to exercise the SMR base)."""

    def __init__(self, env, name, site="dc1", config=None):
        super().__init__(env, name, site, config=config)
        self.value = 0

    def apply_command(self, group_id, command):
        if command.op == "add":
            self.value += command.args[0]
        return {"value": self.value}

    def snapshot_state(self):
        return self.value, 64

    def install_state_snapshot(self, state):
        self.value = state

    def reset_state(self):
        self.value = 0


def build_counter_service(seed=21, concurrency=2, client_cls=ClosedLoopClient, **client_kwargs):
    config = MultiRingConfig(rate_interval=None, checkpoint_interval=None, trim_interval=None)
    system = AtomicMulticast(seed=seed, config=config)
    frontends = [ProposerFrontend(system.env, f"fe{i}", config=config) for i in range(2)]
    replicas = [CountingReplica(system.env, f"rep{i}", config=config) for i in range(2)]
    members = [(f.name, "pa") for f in frontends] + [(r.name, "l") for r in replicas]
    system.create_ring(0, members)

    def factory(sequence):
        command = Command(op="add", args=(1,), group_id=0, size_bytes=64)
        return [command], [0]

    if client_cls is ClosedLoopClient:
        client = ClosedLoopClient(
            system.env, "client", frontends_by_group={0: "fe0"},
            request_factory=factory, concurrency=concurrency, metric_prefix="cnt",
            **client_kwargs,
        )
    else:
        client = OpenLoopClient(
            system.env, "client", frontends_by_group={0: "fe0"},
            request_factory=factory, metric_prefix="cnt", **client_kwargs,
        )
    return system, frontends, replicas, client


class TestAtomicMulticastFacade:
    def test_create_ring_requires_registered_processes(self):
        system = AtomicMulticast(seed=1)
        with pytest.raises(KeyError):
            system.create_ring(0, [("ghost", "pal")])

    def test_ring_and_config_accessors(self):
        config = MultiRingConfig(rate_interval=None)
        system = AtomicMulticast(seed=1, config=config)
        p = RecordingProcess(system.env, "p0")
        system.create_ring(3, [(p.name, "pal")])
        assert system.ring(3).coordinator == "p0"
        assert system.ring_config(3) is config
        assert p in system.processes()
        assert system.process("p0") is p

    def test_start_is_idempotent(self):
        system = AtomicMulticast(seed=1, config=MultiRingConfig(rate_interval=None))
        p = RecordingProcess(system.env, "p0")
        system.create_ring(0, [(p.name, "pal")])
        system.start()
        system.start()
        system.run(until=0.5)

    def test_crash_and_restart_process_updates_registry(self):
        system = AtomicMulticast(seed=1, config=MultiRingConfig(rate_interval=None))
        p = RecordingProcess(system.env, "p0")
        system.create_ring(0, [(p.name, "pal")])
        system.crash_process("p0")
        assert not system.coordination.is_alive("p0")
        system.restart_process("p0")
        assert system.coordination.is_alive("p0")


class TestStateMachineReplicaAndClients:
    def test_commands_are_applied_and_answered(self):
        system, frontends, replicas, client = build_counter_service()
        system.start()
        system.run(until=2.0)
        assert client.completed > 10
        assert replicas[0].value == replicas[1].value
        assert replicas[0].value >= client.completed
        assert frontends[0].forwarded >= client.completed

    def test_closed_loop_keeps_bounded_outstanding(self):
        system, frontends, replicas, client = build_counter_service(concurrency=3)
        system.start()
        system.run(until=1.0)
        assert client.outstanding <= 3
        assert client.issued == client.completed + client.outstanding

    def test_closed_loop_max_requests(self):
        system, frontends, replicas, client = build_counter_service(
            concurrency=2, max_requests=10
        )
        system.start()
        system.run(until=2.0)
        assert client.issued == 10
        assert client.completed == 10

    def test_open_loop_client_issues_at_fixed_rate(self):
        system, frontends, replicas, client = build_counter_service(
            client_cls=OpenLoopClient, rate_per_second=100.0
        )
        system.start()
        system.run(until=2.0)
        assert 150 <= client.issued <= 210
        assert client.completed > 100

    def test_latency_metrics_recorded_per_op(self):
        system, frontends, replicas, client = build_counter_service()
        system.start()
        system.run(until=1.0)
        latencies = system.env.metrics.latency("cnt.latency")
        per_op = system.env.metrics.latency("cnt.latency.add")
        assert latencies.count == client.completed
        assert per_op.count == client.completed

    def test_replica_counts_applied_commands(self):
        system, frontends, replicas, client = build_counter_service()
        system.start()
        system.run(until=1.0)
        assert replicas[0].commands_applied == replicas[0].value

    def test_smr_base_requires_subclass_hooks(self):
        config = MultiRingConfig(rate_interval=None)
        system = AtomicMulticast(seed=2, config=config)
        replica = StateMachineReplica(system.env, "bare", config=config)
        with pytest.raises(NotImplementedError):
            replica.apply_command(0, Command(op="x"))
        with pytest.raises(NotImplementedError):
            replica.snapshot_state()
