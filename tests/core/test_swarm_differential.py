"""Differential proof: a ClientSwarm is bit-identical to individual clients.

The keystone suite of the flyweight workload engine: ``ClientSwarm(n=K)``
with port addressing must emit a command stream bit-identical to ``K``
individual client actors — same seeds, same ``created_at``s, same delivery
order through a real MRP-Store service — with batching off and on, for
closed- and open-loop clients, and the shared-endpoint addressing mode must
produce the same workload trace as the ports mode.

Methodology: every ``network.send`` is tapped (requests *and* replica
responses), so the comparison covers the full externally visible timeline —
issue order, routing, per-command ids and timestamps, and the order in which
replicas answered (i.e. the service's delivery order).
"""

import random

from repro.core import AtomicMulticast, MultiRingConfig
from repro.core.client import ClosedLoopClient, OpenLoopClient
from repro.core.swarm import ClientSwarm
from repro.kvstore import MRPStoreService
from repro.kvstore.client import MRPStoreCommands, kv_request_factory
from repro.kvstore.partitioning import HashPartitioner
from repro.net.message import ClientRequest, ClientResponse
from repro.workloads.arrival import constant
from repro.workloads.ycsb import YCSB_WORKLOADS, YCSBWorkload, ycsb_keyspace

PARTITIONS = [0, 1]
RECORDS = 200


def _build_service(seed, batching, jitter=0.05):
    config = MultiRingConfig(
        batching_enabled=batching,
        batch_max_bytes=2048,
        batch_max_delay=0.0005,
        rate_interval=None,
        checkpoint_interval=None,
        trim_interval=None,
    )
    system = AtomicMulticast(seed=seed, config=config, jitter_fraction=jitter)
    service = MRPStoreService(
        system,
        partition_groups=PARTITIONS,
        acceptors_per_partition=3,
        replicas_per_partition=2,
        global_ring_id=None,
        config=config,
    )
    service.preload(ycsb_keyspace(RECORDS))
    return system, service.frontend_map()


def _factory_for(seed, index, workload="F"):
    """Per-client request factory; identical streams for identical (seed, index)."""
    generator = YCSBWorkload(
        YCSB_WORKLOADS[workload],
        record_count=RECORDS,
        rng=random.Random(seed * 7919 + index),
    )
    return kv_request_factory(MRPStoreCommands(HashPartitioner(PARTITIONS)), generator)


def _tap_network(system):
    """Log every client request and replica response crossing the network."""
    log = []
    original = system.network.send

    def wrapped(src, dst, message):
        if isinstance(message, ClientRequest):
            c = message.command
            log.append(
                ("REQ", src, dst, c.op, tuple(c.args), c.group_id,
                 c.command_id, c.created_at, message.created_at)
            )
        elif isinstance(message, ClientResponse):
            group = message.result.get("group_id") if isinstance(message.result, dict) else None
            log.append(("RESP", src, dst, message.request_id, group))
        original(src, dst, message)

    system.network.send = wrapped
    return log


def _latency_state(system):
    """All client-side latency recorders' raw sample lists, by name."""
    registry = system.env.metrics
    return {
        name: registry.latency(name).samples
        for name in registry.names()
        if name.startswith("client.latency")
    }


def _run_actors(seed, batching, k, concurrency, until, jitter=0.05, workload="F"):
    system, frontends = _build_service(seed, batching, jitter)
    clients = [
        ClosedLoopClient(
            system.env, f"cl{i}", frontends, _factory_for(seed, i, workload),
            concurrency=concurrency,
        )
        for i in range(k)
    ]
    log = _tap_network(system)
    system.start()
    system.run(until=until)
    return {
        "log": log,
        "latencies": _latency_state(system),
        "issued": [c.issued for c in clients],
        "completed": [c.completed for c in clients],
    }


def _run_swarm(seed, batching, k, concurrency, until, jitter=0.05,
               addressing="ports", workload="F"):
    system, frontends = _build_service(seed, batching, jitter)
    factories = [_factory_for(seed, i, workload) for i in range(k)]
    swarm = ClientSwarm(
        system.env,
        "swarm",
        frontends,
        lambda index, sequence: factories[index](sequence),
        clients=k,
        concurrency=concurrency,
        addressing=addressing,
        port_names=[f"cl{i}" for i in range(k)] if addressing == "ports" else None,
        sketch=None,
        record_trace=True,
    )
    log = _tap_network(system)
    system.start()
    system.run(until=until)
    return {
        "log": log,
        "latencies": _latency_state(system),
        "issued": [swarm.per_client_issued(i) for i in range(k)],
        "completed": [swarm.per_client_completed(i) for i in range(k)],
        "trace": swarm.command_trace,
    }


def _run_open_actors(seed, k, rate_each, until, jitter=0.05):
    system, frontends = _build_service(seed, batching=False, jitter=jitter)
    clients = [
        OpenLoopClient(
            system.env, f"cl{i}", frontends, _factory_for(seed, i),
            rate_per_second=rate_each,
        )
        for i in range(k)
    ]
    log = _tap_network(system)
    system.start()
    system.run(until=until)
    return {
        "log": log,
        "latencies": _latency_state(system),
        "issued": [c.issued for c in clients],
        "completed": [c.completed for c in clients],
    }


def _run_open_swarm(seed, k, aggregate_rate, until, jitter=0.05):
    system, frontends = _build_service(seed, batching=False, jitter=jitter)
    factories = [_factory_for(seed, i) for i in range(k)]
    swarm = ClientSwarm(
        system.env,
        "swarm",
        frontends,
        lambda index, sequence: factories[index](sequence),
        clients=k,
        mode="open",
        arrival=constant(aggregate_rate),
        stagger=False,
        addressing="ports",
        port_names=[f"cl{i}" for i in range(k)],
        sketch=None,
    )
    log = _tap_network(system)
    system.start()
    system.run(until=until)
    return {
        "log": log,
        "latencies": _latency_state(system),
        "issued": [swarm.per_client_issued(i) for i in range(k)],
        "completed": [swarm.per_client_completed(i) for i in range(k)],
    }


def _assert_identical(reference, swarm):
    assert reference["log"] == swarm["log"]
    assert reference["latencies"] == swarm["latencies"]
    assert reference["issued"] == swarm["issued"]
    assert reference["completed"] == swarm["completed"]
    assert sum(reference["completed"]) > 0  # the runs actually did work


class TestClosedLoopDifferential:
    def test_bit_identical_batching_off(self):
        reference = _run_actors(seed=11, batching=False, k=4, concurrency=1, until=1.4)
        swarm = _run_swarm(seed=11, batching=False, k=4, concurrency=1, until=1.4)
        _assert_identical(reference, swarm)

    def test_bit_identical_batching_on(self):
        reference = _run_actors(seed=12, batching=True, k=4, concurrency=1, until=1.4)
        swarm = _run_swarm(seed=12, batching=True, k=4, concurrency=1, until=1.4)
        _assert_identical(reference, swarm)

    def test_bit_identical_multiple_outstanding_per_client(self):
        reference = _run_actors(seed=13, batching=False, k=3, concurrency=2, until=1.2)
        swarm = _run_swarm(seed=13, batching=False, k=3, concurrency=2, until=1.2)
        _assert_identical(reference, swarm)

    def test_bit_identical_with_multi_group_scans(self):
        """Workload E: scans await responses from several partitions."""
        reference = _run_actors(
            seed=14, batching=False, k=3, concurrency=1, until=1.2, workload="E"
        )
        swarm = _run_swarm(
            seed=14, batching=False, k=3, concurrency=1, until=1.2, workload="E"
        )
        _assert_identical(reference, swarm)


class TestOpenLoopDifferential:
    def test_bit_identical_open_loop(self):
        # Aggregate 240 req/s over 3 clients == 80 req/s each; stagger off
        # replicates the simultaneous first fires of individual actors.
        reference = _run_open_actors(seed=21, k=3, rate_each=240.0 / 3, until=1.2)
        swarm = _run_open_swarm(seed=21, k=3, aggregate_rate=240.0, until=1.2)
        _assert_identical(reference, swarm)


class TestAddressingModes:
    def test_shared_endpoint_matches_ports_trace(self):
        """Shared addressing must reproduce the ports-mode workload exactly.

        Jitter is disabled: the shared endpoint funnels every client through
        one connection whose FIFO clamp would interleave jitter differently.
        """
        ports = _run_swarm(
            seed=31, batching=False, k=4, concurrency=1, until=1.2,
            jitter=0.0, addressing="ports",
        )
        shared = _run_swarm(
            seed=31, batching=False, k=4, concurrency=1, until=1.2,
            jitter=0.0, addressing="shared",
        )
        # The trace captures (index, sequence, op, args, group, created_at):
        # everything but the addressing-dependent identity.
        assert ports["trace"] == shared["trace"]
        assert ports["latencies"] == shared["latencies"]
        assert ports["issued"] == shared["issued"]
        assert ports["completed"] == shared["completed"]
        assert sum(ports["completed"]) > 0

    def test_swarm_rerun_is_deterministic(self):
        first = _run_swarm(seed=32, batching=False, k=3, concurrency=1, until=1.0)
        second = _run_swarm(seed=32, batching=False, k=3, concurrency=1, until=1.0)
        assert first["log"] == second["log"]
        assert first["trace"] == second["trace"]
        assert first["latencies"] == second["latencies"]
