"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from typing import Dict, List, Tuple

import pytest

from repro.core import AtomicMulticast, MultiRingConfig
from repro.multiring import MultiRingProcess
from repro.paxos.messages import ProposalValue


class RecordingProcess(MultiRingProcess):
    """A process that records everything it delivers (for assertions)."""

    def __init__(self, env, name, site="dc1", messages_per_round=1):
        super().__init__(env, name, site, messages_per_round=messages_per_round)
        self.delivered: List[Tuple[int, int, object]] = []
        self.delivery_times: List[float] = []

    def on_deliver(self, group_id: int, instance: int, value: ProposalValue) -> None:
        self.delivered.append((group_id, instance, value.payload))
        self.delivery_times.append(self.now)

    def delivered_payloads(self, group_id=None):
        if group_id is None:
            return [p for _, _, p in self.delivered]
        return [p for g, _, p in self.delivered if g == group_id]


@pytest.fixture
def quiet_config() -> MultiRingConfig:
    """A configuration with background machinery (skips, checkpoints, trims) off."""
    return MultiRingConfig(
        rate_interval=None,
        checkpoint_interval=None,
        trim_interval=None,
    )


@pytest.fixture
def simple_ring(quiet_config):
    """A three-process ring where every process plays every role."""
    system = AtomicMulticast(seed=11, config=quiet_config)
    processes = [RecordingProcess(system.env, f"n{i}") for i in range(3)]
    system.create_ring(0, [(p.name, "pal") for p in processes])
    system.start()
    return system, processes


def build_two_ring_system(seed: int = 5, messages_per_round: int = 1):
    """Two rings, three shared learner/acceptor processes, one learner of ring 1 only."""
    config = MultiRingConfig(rate_interval=0.005, max_rate=500.0,
                             checkpoint_interval=None, trim_interval=None)
    system = AtomicMulticast(seed=seed, config=config)
    shared = [
        RecordingProcess(system.env, f"s{i}", messages_per_round=messages_per_round)
        for i in range(3)
    ]
    solo = RecordingProcess(system.env, "solo", messages_per_round=messages_per_round)
    system.create_ring(0, [(p.name, "pal") for p in shared])
    system.create_ring(1, [(p.name, "pal") for p in shared] + [(solo.name, "l")])
    system.start()
    return system, shared, solo
