#!/usr/bin/env python
"""Sharded-engine benchmark — wall clock, barrier counts and determinism.

Three sections, all landing in ``BENCH_parallel.json`` at the repository
root:

* **speedup** — one 2-ring Figure 6 point (independent-rings configuration,
  one shard per ring) measured with ``workers=1`` (the single-process
  reference engine) and ``workers=2`` (two ``multiprocessing`` workers).
  Both runs execute bit-identical simulations, so the wall-clock ratio is
  pure engine speedup.  The expected speedup with >= 2 free cores is close
  to 2x; on a machine without two free cores the ratio is meaningless
  (process overhead with nothing to parallelise against), so the JSON
  records ``"insufficient_cores": true`` and **no speedup claim** instead of
  a misleading sub-1x number.
* **barrier_count** — a bursty cross-shard workload (short message bursts
  separated by long idle stretches) run under the fixed-window protocol and
  under adaptive event horizons.  Both produce bit-identical results; the
  adaptive protocol must need strictly fewer barriers (it hops over the idle
  stretches in one window each).
* **determinism** — full per-learner delivery sequences must match across
  worker counts, for the independent-rings configuration *and* for the
  figures' original shared-learner configuration (whose **reactive** merge
  stage applies the shards' streamed decision-stream segments to a live
  replica barrier by barrier); the reactively-applied order must also equal
  the offline replay of the same streams.
* **reactive_shared** — one shared-configuration (original fig6 shape) run
  with the reactive merge stage, recording the merge/reactive-stage wall
  clock *separately* from the shard wall clock — so any speedup claim states
  what it includes — plus the client-visible merge latency fields
  (``reactive_latency_mean_ms`` / ``_p95_ms``).
* **faulted_determinism** — the shared configuration under a *fixed crash
  schedule*: the shared learner's in-shard mirrors crash mid-run and
  restart, their re-emitted stream prefixes are deduped by the
  incarnation-aware merge, and the reactively merged state must still be
  bit-identical between ``workers=1`` and ``workers=2`` and equal to the
  offline replay anchor.  The section also records the stall window the
  crash opened (``reactive_stall_count`` / ``reactive_stalled_ms``).
* **barrier_overhead** — the barrier-plane round-2 accounting, measured on
  the fig6 smoke point (shared configuration, 2 log rings + common ring,
  ``workers=2``, warmup 0.2 s / duration 0.6 s): IPC bytes per barrier with
  the compact wire codec on vs the legacy pickling baseline (the codec must
  cut >= 30%), plus how much of the merge stage ran overlapped with the next
  window (``merge_overlap_fraction``).  The byte counts are deterministic
  for a fixed seed, so the perf guard pins them exactly.
* **skip_windows** — a one-way burst workload (active sender shard, passive
  receiver shard) under adaptive horizons: the receiver's worker must be
  skipped — no wake, no reply — for the windows where it has neither
  inbound nor local events, with results bit-identical to ``workers=1``.
* **events_ladder** — events/s of a 4-ring independent fig6 point at
  ``workers`` 1, 2 and 4, each rung recorded only when that many cores are
  actually available (a rung above the core count measures contention, not
  the engine).

Run from the repository root:

    PYTHONPATH=src python benchmarks/bench_parallel.py

``--smoke`` shrinks the measurement windows for CI smoke runs.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.bench.parallel import run_fig6_sharded  # noqa: E402
from repro.sim import (  # noqa: E402
    Actor,
    Environment,
    Network,
    ShardHarness,
    ShardSpec,
    Topology,
    run_sharded,
)

RING_COUNT = 2
REPEATS = 3

# Bursty cross-shard workload: bursts of closely spaced messages separated by
# idle stretches two orders of magnitude longer than the lookahead.
BURST_LATENCY = 0.010
BURST_GAP = 0.5
BURST_COUNT = 4
BURST_SIZE = 10
BURST_SPACING = 0.001
BURST_UNTIL = BURST_COUNT * BURST_GAP + 0.2


def _cores_available() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


# ---------------------------------------------------------------------------
# Speedup section (independent-rings Figure 6 point)
# ---------------------------------------------------------------------------

def _measure(workers: int, warmup: float, duration: float, repeats: int):
    """Best-of-N wall clock of the timed runs (no delivery recording).

    The timed runs do not record deliveries: shipping hundreds of thousands
    of delivery records through the worker pipes would charge the sharded
    side an accounting cost the single-process side never pays.  Digest
    equality is verified separately on short windows.
    """
    best = None
    events = 0
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = run_fig6_sharded(
            RING_COUNT, workers=workers, warmup=warmup, duration=duration
        )
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
        events = int(result.metrics["events_total"])
    return best, events


def _verify_determinism(warmup: float, duration: float, configuration: str) -> bool:
    """Full per-learner delivery sequences must match across worker counts.

    For the shared (original) configuration the comparison additionally
    covers the reactive merge-stage output, its offline-replay anchor (the
    reactively-applied order must equal ``replay_streams`` of the same
    streams, in both runs) and every recorded per-ring stream.
    """
    results = [
        run_fig6_sharded(
            RING_COUNT,
            workers=workers,
            warmup=warmup,
            duration=duration,
            record_deliveries=True,
            configuration=configuration,
        )
        for workers in (1, 2)
    ]
    keys = ["deliveries"]
    if configuration == "shared":
        keys += ["merged_deliveries", "merged_deliveries_offline", "ring_streams"]
        if any(
            r.series.get("merged_deliveries") != r.series.get("merged_deliveries_offline")
            for r in results
        ):
            return False
    return all(
        results[0].series.get(key) is not None
        and results[0].series.get(key) == results[1].series.get(key)
        for key in keys
    )


def _measure_reactive_shared(warmup: float, duration: float):
    """One shared-configuration run: shard vs merge/reactive wall clock.

    The shared configuration's wall clock includes the parent-side reactive
    merge stage (segment routing, cursor feeding, replica application), which
    the independent configuration never pays — so the two are recorded
    separately and any speedup claim can state what it includes.
    """
    result = run_fig6_sharded(
        RING_COUNT, workers=1, warmup=warmup, duration=duration,
        configuration="shared",
    )
    return {
        "configuration": "fig6 original shape (shared learner + common ring)",
        "wall_clock_s": round(result.metrics["wall_clock_s"], 4),
        "shard_wall_clock_s": round(result.metrics["shard_wall_clock_s"], 4),
        "merge_stage_s": round(result.metrics["merge_stage_s"], 4),
        "barrier_count": int(result.metrics["barrier_count"]),
        "reactive_commands_applied": int(result.metrics["reactive_commands_applied"]),
        "reactive_latency_mean_ms": round(result.metrics["reactive_latency_mean_ms"], 3),
        "reactive_latency_p95_ms": round(result.metrics["reactive_latency_p95_ms"], 3),
        "note": (
            "wall_clock_s = shard_wall_clock_s + merge_stage_s; speedup "
            "numbers above cover the independent configuration only (no "
            "merge stage); reactive latency is merge-visibility freshness "
            "(joint watermark minus command creation, simulated time)"
        ),
    }


def _measure_faulted_determinism(warmup: float, duration: float):
    """Shared configuration under a fixed crash schedule, both worker counts.

    The schedule crashes the shared learner's in-shard mirrors mid-run and
    restarts them; the merged reactive state must be bit-identical across
    worker counts and equal to the deduped offline replay, and the crash
    must show up as a recorded stall window.
    """
    crash_at = warmup + duration * 0.3
    schedule = [(crash_at, "dlog-replica0", duration * 0.25)]
    results = [
        run_fig6_sharded(
            RING_COUNT,
            workers=workers,
            warmup=warmup,
            duration=duration,
            record_deliveries=True,
            configuration="shared",
            crash_schedule=schedule,
        )
        for workers in (1, 2)
    ]
    identical = all(
        results[0].series.get(key) is not None
        and results[0].series.get(key) == results[1].series.get(key)
        for key in ["merged_deliveries", "ring_streams"]
    )
    offline_match = all(
        r.series["merged_deliveries"] == r.series["merged_deliveries_offline"]
        for r in results
    )
    return {
        "crash_schedule": [
            {"at_s": at, "process": name, "down_for_s": down}
            for at, name, down in schedule
        ],
        "merged_deliveries_identical": identical,
        "offline_anchor_identical": offline_match,
        "merged_delivery_count": len(
            results[0].series["merged_deliveries"].get("dlog-replica0", [])
        ),
        "reactive_stall_count": int(results[0].metrics["reactive_stall_count"]),
        "reactive_stalled_ms": round(results[0].metrics["reactive_stalled_ms"], 3),
        "note": (
            "fixed (at, process, down_for) crash plan executed inside every "
            "shard hosting the process; restarted incarnations re-emit "
            "stream prefixes and the incarnation-aware merge dedups them — "
            "the reactively merged state is bit-identical across worker "
            "counts and to the offline effective_streams/replay_streams "
            "anchor"
        ),
    }


# ---------------------------------------------------------------------------
# Barrier-count section (bursty cross-shard traffic, fixed vs adaptive)
# ---------------------------------------------------------------------------

class _BurstActor(Actor):
    """Fires short bursts of messages at a remote peer, then goes idle."""

    def __init__(self, env, name, site, peer):
        super().__init__(env, name, site)
        self.peer = peer
        self.received = []

    def on_start(self):
        for burst in range(BURST_COUNT):
            for index in range(BURST_SIZE):
                self.env.simulator.schedule_at(
                    burst * BURST_GAP + index * BURST_SPACING,
                    self._fire,
                    burst,
                    index,
                )

    def _fire(self, burst, index):
        self.send(self.peer, {"burst": burst, "index": index, "size_bytes": 64})

    def on_message(self, sender, message):
        self.received.append((round(self.now, 9), message["burst"], message["index"]))


class _BurstHarness(ShardHarness):
    def __init__(self, env, actor):
        super().__init__(env)
        self.actor = actor

    def start(self):
        self.actor.on_start()

    def finalize(self):
        return self.actor.received


def _build_burst_shard(index: int) -> _BurstHarness:
    topo = Topology(local_latency=0.00005, local_bandwidth_bps=10e9)
    topo.add_site("s0")
    topo.add_site("s1")
    topo.set_link("s0", "s1", one_way_latency=BURST_LATENCY, bandwidth_bps=1e9)
    env = Environment(seed=13)
    Network(env, topo, jitter_fraction=0.0)
    actor = _BurstActor(env, f"burst{index}", f"s{index}", f"burst{1 - index}")
    return _BurstHarness(env, actor)


class _OneWayReceiver(Actor):
    """Passive sink: logs receipts, never schedules or sends anything."""

    def __init__(self, env, name, site):
        super().__init__(env, name, site)
        self.received = []

    def on_message(self, sender, message):
        self.received.append((round(self.now, 9), message["burst"], message["index"]))


def _build_oneway_shard(index: int) -> _BurstHarness:
    topo = Topology(local_latency=0.00005, local_bandwidth_bps=10e9)
    topo.add_site("s0")
    topo.add_site("s1")
    topo.set_link("s0", "s1", one_way_latency=BURST_LATENCY, bandwidth_bps=1e9)
    env = Environment(seed=13)
    Network(env, topo, jitter_fraction=0.0)
    if index == 0:
        actor = _BurstActor(env, "burst0", "s0", "sink1")
    else:
        actor = _OneWayReceiver(env, "sink1", "s1")
    return _BurstHarness(env, actor)


# ---------------------------------------------------------------------------
# Barrier-plane round 2: wire codec bytes, merge overlap, skip windows
# ---------------------------------------------------------------------------

#: The fig6 smoke point the codec acceptance is measured on — the same
#: windows the differential suite uses, so the byte counts are pinned by a
#: deterministic simulation.
OVERHEAD_WARMUP = 0.2
OVERHEAD_DURATION = 0.6


def _measure_barrier_overhead():
    """Codec vs legacy IPC volume and merge overlap on the fig6 smoke point."""
    runs = {}
    for codec in (True, False):
        runs[codec] = run_fig6_sharded(
            RING_COUNT,
            workers=2,
            warmup=OVERHEAD_WARMUP,
            duration=OVERHEAD_DURATION,
            configuration="shared",
            wire_codec=codec,
        ).metrics
    per_barrier = {
        codec: metrics["ipc_bytes"] / max(metrics["barrier_count"], 1.0)
        for codec, metrics in runs.items()
    }
    return {
        "point": (
            f"fig6 shared ({RING_COUNT} log rings + common ring), workers=2, "
            f"warmup {OVERHEAD_WARMUP}s, duration {OVERHEAD_DURATION}s"
        ),
        "barrier_count": int(runs[True]["barrier_count"]),
        "wire_codec": {
            "ipc_bytes": int(runs[True]["ipc_bytes"]),
            "ipc_messages": int(runs[True]["ipc_messages"]),
            "ipc_bytes_per_barrier": round(per_barrier[True], 1),
        },
        "legacy": {
            "ipc_bytes": int(runs[False]["ipc_bytes"]),
            "ipc_messages": int(runs[False]["ipc_messages"]),
            "ipc_bytes_per_barrier": round(per_barrier[False], 1),
        },
        "ipc_bytes_reduction": round(1.0 - per_barrier[True] / per_barrier[False], 4),
        "merge_overlap_s": round(runs[True]["merge_overlap_s"], 4),
        "merge_overlap_fraction": round(runs[True]["merge_overlap_fraction"], 4),
        "note": (
            "byte counts are deterministic for the fixed seed (the perf "
            "guard pins them); overlap is wall-clock measured and machine-"
            "dependent"
        ),
    }


def _measure_skip_windows():
    """Horizon-aware scheduling on a one-way burst workload, workers 1 vs 2."""
    runs = {
        workers: run_sharded(
            [ShardSpec(i, _build_oneway_shard, i) for i in range(2)],
            until=BURST_UNTIL,
            workers=workers,
            lookahead=BURST_LATENCY,
            horizon="adaptive",
        )
        for workers in (1, 2)
    }
    return {
        "workload": (
            f"one-way: {BURST_COUNT} bursts of {BURST_SIZE} messages to a "
            f"passive receiver shard, {BURST_GAP}s idle between bursts"
        ),
        "windows": runs[2].windows,
        "worker_windows_skipped": runs[2].worker_windows_skipped,
        "results_identical": runs[1].results == runs[2].results,
        "note": (
            "a skipped window is a pure no-op for an idle worker: no wake, "
            "no reply frame; the in-process workers=1 engine never skips and "
            "anchors the result comparison"
        ),
    }


LADDER_RINGS = 4


def _measure_events_ladder(warmup: float, duration: float, repeats: int, cores: int):
    """Events/s of a 4-ring independent point at workers 1/2/4 (cores allowing)."""
    ladder = {}
    for workers in (1, 2, 4):
        if workers > 1 and cores < workers:
            ladder[str(workers)] = {"skipped": f"needs >= {workers} cores, have {cores}"}
            continue
        best = None
        events = 0
        for _ in range(repeats):
            t0 = time.perf_counter()
            result = run_fig6_sharded(
                LADDER_RINGS, workers=workers, warmup=warmup, duration=duration
            )
            elapsed = time.perf_counter() - t0
            if best is None or elapsed < best:
                best = elapsed
            events = int(result.metrics["events_total"])
        ladder[str(workers)] = {
            "wall_clock_s": round(best, 4),
            "events_per_s": round(events / best) if best else 0,
        }
    ladder["simulated_events"] = events
    return ladder


def _measure_barriers():
    """Barrier counts (and result parity) of fixed vs adaptive horizons."""
    runs = {}
    for horizon in ("fixed", "adaptive"):
        runs[horizon] = run_sharded(
            [ShardSpec(i, _build_burst_shard, i) for i in range(2)],
            until=BURST_UNTIL,
            workers=1,
            lookahead=BURST_LATENCY,
            horizon=horizon,
        )
    identical = runs["fixed"].results == runs["adaptive"].results
    return {
        "workload": (
            f"{BURST_COUNT} bursts of {BURST_SIZE} cross-shard messages, "
            f"{BURST_GAP}s idle between bursts, lookahead {BURST_LATENCY}s"
        ),
        "fixed": runs["fixed"].barrier_count,
        "adaptive": runs["adaptive"].barrier_count,
        "reduction": round(
            1.0 - runs["adaptive"].barrier_count / runs["fixed"].barrier_count, 3
        ),
        "results_identical": identical,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="short CI windows")
    parser.add_argument(
        "--output", default=os.path.join(REPO_ROOT, "BENCH_parallel.json")
    )
    args = parser.parse_args()

    warmup, duration = (0.2, 0.8) if args.smoke else (0.5, 4.0)
    repeats = 1 if args.smoke else REPEATS
    cores = _cores_available()
    insufficient_cores = cores < 2

    single_s, events = _measure(1, warmup, duration, repeats)
    barrier = _measure_barriers()
    identical = _verify_determinism(0.2, 0.6, "independent")
    shared_identical = _verify_determinism(0.2, 0.6, "shared")
    reactive_shared = _measure_reactive_shared(0.2, 0.8 if args.smoke else 2.0)
    faulted = _measure_faulted_determinism(0.2, 1.0 if args.smoke else 2.5)
    overhead = _measure_barrier_overhead()
    skip_windows = _measure_skip_windows()
    ladder = _measure_events_ladder(
        0.2, 0.6 if args.smoke else 2.0, repeats, cores
    )

    payload = {
        "benchmark": "fig6 2-ring point, one shard per ring (independent rings)",
        "smoke": args.smoke,
        "python": platform.python_version(),
        "cores_available": cores,
        "windows": {"warmup_s": warmup, "duration_s": duration, "repeats": repeats},
        "simulated_events": events,
        "single_process_s": round(single_s, 4),
        "deliveries_identical": identical,
        "shared_deliveries_identical": shared_identical,
        "barrier_count": barrier,
        "reactive_shared": reactive_shared,
        "faulted_determinism": faulted,
        "barrier_overhead": overhead,
        "skip_windows": skip_windows,
        "events_ladder": ladder,
    }
    if insufficient_cores:
        # A 2-worker run on a 1-core box measures process overhead, not the
        # engine: record the fact and make no speedup claim at all.
        payload["insufficient_cores"] = True
        payload["note"] = (
            "fewer than 2 cores available: the 2-worker wall clock would be "
            "a misleading sub-1x number, so no speedup is claimed; re-run on "
            "a machine with >= 2 free cores"
        )
    else:
        sharded_s, _ = _measure(2, warmup, duration, repeats)
        payload["insufficient_cores"] = False
        payload["sharded_2workers_s"] = round(sharded_s, 4)
        payload["speedup"] = round(single_s / sharded_s, 3) if sharded_s else 0.0
        payload["note"] = (
            "speedup approaches the worker count only when that many cores "
            "are free; cores_available records what this machine offered"
        )

    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    print(json.dumps(payload, indent=2))
    failed = False
    if not identical:
        print("FAIL: sharded and single-process delivery sequences differ", file=sys.stderr)
        failed = True
    if not shared_identical:
        print(
            "FAIL: shared-learner (original configuration) sequences differ "
            "across worker counts or the reactive merge diverged from the "
            "offline replay",
            file=sys.stderr,
        )
        failed = True
    if reactive_shared["reactive_commands_applied"] <= 0:
        print("FAIL: reactive merge stage applied no commands", file=sys.stderr)
        failed = True
    if not (faulted["merged_deliveries_identical"] and faulted["offline_anchor_identical"]):
        print(
            "FAIL: faulted run (fixed crash schedule) not bit-identical "
            "across worker counts or diverged from the offline anchor",
            file=sys.stderr,
        )
        failed = True
    if faulted["reactive_stall_count"] < 1:
        print(
            "FAIL: crash schedule opened no stall window at the reactive stage",
            file=sys.stderr,
        )
        failed = True
    if not barrier["results_identical"]:
        print("FAIL: fixed and adaptive horizons produced different results", file=sys.stderr)
        failed = True
    if barrier["adaptive"] >= barrier["fixed"]:
        print(
            f"FAIL: adaptive horizons did not reduce barriers "
            f"({barrier['adaptive']} vs {barrier['fixed']})",
            file=sys.stderr,
        )
        failed = True
    if overhead["ipc_bytes_reduction"] < 0.30:
        print(
            f"FAIL: wire codec cut only {overhead['ipc_bytes_reduction']:.1%} "
            "of IPC bytes per barrier (>= 30% required)",
            file=sys.stderr,
        )
        failed = True
    if not insufficient_cores and overhead["merge_overlap_fraction"] <= 0.0:
        print(
            "FAIL: no merge-stage time overlapped with worker execution on "
            "the reactive shared configuration",
            file=sys.stderr,
        )
        failed = True
    if skip_windows["worker_windows_skipped"] <= 0:
        print(
            "FAIL: the idle receiver worker was never skipped on the "
            "one-way burst workload",
            file=sys.stderr,
        )
        failed = True
    if not skip_windows["results_identical"]:
        print(
            "FAIL: skip-window run diverged from the workers=1 reference",
            file=sys.stderr,
        )
        failed = True
    if (
        not insufficient_cores
        and not args.smoke
        and payload.get("speedup", 0.0) < 1.4
    ):
        print(
            f"FAIL: expected >=1.4x speedup with {cores} cores, got "
            f"{payload['speedup']:.2f}x",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
