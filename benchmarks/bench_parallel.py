#!/usr/bin/env python
"""Sharded-engine benchmark — wall clock of multi-core vs single-process runs.

Measures one 2-ring Figure 6 point (independent-rings configuration, one
shard per ring) through :func:`repro.bench.parallel.run_fig6_sharded` twice:

* **workers=1** — the single-process reference engine (both shards run
  sequentially on one core);
* **workers=2** — the same two shards in two ``multiprocessing`` workers.

Both runs execute bit-identical simulations (the script verifies the full
per-learner delivery sequences match), so the wall-clock ratio is pure
engine speedup.  Results land in ``BENCH_parallel.json`` at the repository
root.  The expected speedup on a machine with >= 2 free cores is close to
2x (the shards never communicate); on a single-core machine the ratio
degrades to ~1x minus process overhead — the JSON records
``cores_available`` so CI and developers can interpret the number.

Run from the repository root:

    PYTHONPATH=src python benchmarks/bench_parallel.py

``--smoke`` shrinks the measurement windows for CI smoke runs.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.bench.parallel import run_fig6_sharded  # noqa: E402

RING_COUNT = 2
REPEATS = 3


def _cores_available() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _measure(workers: int, warmup: float, duration: float, repeats: int):
    """Best-of-N wall clock of the timed runs (no delivery recording).

    The timed runs do not record deliveries: shipping hundreds of thousands
    of delivery records through the worker pipes would charge the sharded
    side an accounting cost the single-process side never pays.  Digest
    equality is verified separately on short windows.
    """
    best = None
    events = 0
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = run_fig6_sharded(
            RING_COUNT, workers=workers, warmup=warmup, duration=duration
        )
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
        events = int(result.metrics["events_total"])
    return best, events


def _verify_determinism(warmup: float, duration: float) -> bool:
    """Full per-learner delivery sequences must match across worker counts."""
    digests = [
        run_fig6_sharded(
            RING_COUNT,
            workers=workers,
            warmup=warmup,
            duration=duration,
            record_deliveries=True,
        ).series["deliveries"]
        for workers in (1, 2)
    ]
    return digests[0] == digests[1]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="short CI windows")
    parser.add_argument(
        "--output", default=os.path.join(REPO_ROOT, "BENCH_parallel.json")
    )
    args = parser.parse_args()

    warmup, duration = (0.2, 0.8) if args.smoke else (0.5, 4.0)
    repeats = 1 if args.smoke else REPEATS
    cores = _cores_available()

    single_s, events = _measure(1, warmup, duration, repeats)
    sharded_s, _ = _measure(2, warmup, duration, repeats)
    identical = _verify_determinism(0.2, 0.8)
    speedup = single_s / sharded_s if sharded_s else 0.0

    payload = {
        "benchmark": "fig6 2-ring point, one shard per ring (independent rings)",
        "smoke": args.smoke,
        "python": platform.python_version(),
        "cores_available": cores,
        "windows": {"warmup_s": warmup, "duration_s": duration, "repeats": repeats},
        "simulated_events": events,
        "single_process_s": round(single_s, 4),
        "sharded_2workers_s": round(sharded_s, 4),
        "speedup": round(speedup, 3),
        "deliveries_identical": identical,
        "note": (
            "speedup approaches the worker count only when that many cores are "
            "free; cores_available records what this machine offered"
        ),
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    print(json.dumps(payload, indent=2))
    if not identical:
        print("FAIL: sharded and single-process delivery sequences differ", file=sys.stderr)
        return 1
    if cores >= 2 and not args.smoke and speedup < 1.4:
        print(
            f"FAIL: expected >=1.4x speedup with {cores} cores, got {speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
