"""Figure 5 — dLog versus the sequencer/ensemble log (Bookkeeper stand-in).

Regenerates the throughput and latency curves of Figure 5 (Section 8.3.3):
1 KB synchronous appends, client threads swept.  Expected shape: dLog delivers
higher throughput and lower latency; the comparator's latency is dominated by
its aggressive batching.
"""

from __future__ import annotations

import pytest

from repro.bench import print_results, run_fig5_point
from repro.bench.fig5_dlog import FIG5_SYSTEMS

_RESULTS = []

_THREADS = (10, 50, 100)


@pytest.mark.parametrize("threads", _THREADS)
@pytest.mark.parametrize("system_name", FIG5_SYSTEMS)
def test_fig5_point(benchmark, system_name: str, threads: int, windows):
    """One (system, client threads) point of Figure 5."""
    warmup, duration = windows

    def run():
        return run_fig5_point(system_name, threads, warmup=warmup, duration=duration)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS.append(result)
    benchmark.extra_info.update(result.metrics)
    assert result.metrics["throughput_ops"] > 0


def test_fig5_report(benchmark):
    """Print the Figure 5 curves and check that dLog wins on both axes."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _RESULTS:
        pytest.skip("no fig5 points were collected")
    print_results(
        _RESULTS,
        param_keys=["system", "threads"],
        metric_keys=["throughput_ops", "latency_mean_ms"],
        title="Figure 5 — dLog vs sequencer log (1 KB synchronous appends)",
    )
    by_key = {(r.params["system"], r.params["threads"]): r.metrics for r in _RESULTS}
    threads = sorted({r.params["threads"] for r in _RESULTS})
    for t in threads:
        dlog = by_key.get(("dlog", t))
        bookkeeper = by_key.get(("bookkeeper", t))
        if not dlog or not bookkeeper:
            continue
        assert dlog["throughput_ops"] > bookkeeper["throughput_ops"], (
            f"dLog should outperform the sequencer log at {t} client threads"
        )
        assert dlog["latency_mean_ms"] < bookkeeper["latency_mean_ms"], (
            f"dLog should have lower latency than the sequencer log at {t} client threads"
        )
