"""Shared configuration of the benchmark suite.

Every benchmark regenerates one figure of the paper at a reduced scale
(shorter measurement windows, smaller client counts) so that the whole suite
completes in minutes.  The ``--repro-full`` flag switches to the full-scale
parameters for an overnight reproduction run.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--repro-full",
        action="store_true",
        default=False,
        help="run the full-scale experiments (much slower, closer to the paper's durations)",
    )
    parser.addoption(
        "--workers",
        type=int,
        default=None,
        help=(
            "re-measure the scalability figures (6/7) on the sharded engine "
            "with this many worker processes (both the independent-rings and "
            "the original shared-learner configurations)"
        ),
    )


@pytest.fixture(scope="session")
def full_scale(request) -> bool:
    """Whether the full-scale experiment parameters were requested."""
    return request.config.getoption("--repro-full")


@pytest.fixture(scope="session")
def windows(full_scale):
    """(warmup, duration) used by the scaled-down benchmark runs."""
    if full_scale:
        return 2.0, 20.0
    return 0.5, 1.5


@pytest.fixture(scope="session")
def workers(request):
    """Worker-process count for the sharded figure points (None = skip them)."""
    return request.config.getoption("--workers")
