#!/usr/bin/env python
"""Kernel/network fast-path benchmark — events/second and Figure 3 wall clock.

Three measurements, recorded in ``BENCH_kernel.json`` at the repository root
so the performance trajectory is tracked across PRs:

* **micro** — raw kernel events/second on a self-rescheduling event storm
  with a cancelled-timer mix (the pattern protocol retransmission timers
  produce), run on both the fast-path :class:`repro.sim.kernel.Simulator`
  and the seed-snapshot :class:`repro.sim.legacy.LegacySimulator`;
* **macro_injected** — wall-clock time of one scaled-down Figure 3 point
  (in-memory storage, 2 KB values) through the current protocol stack, once
  as shipped and once with the seed kernel + seed network injected.  This
  isolates the substrate's contribution while holding the protocol layer
  fixed.  The kernel is injected through ``amcast``'s module global (the
  deployment facade constructs its simulator explicitly, so patching the
  actor module alone would silently leave the fast kernel in place — which
  is exactly what earlier revisions of this script did);
* **macro_seed_commit** — the same Figure 3 point run against the *actual
  seed commit* (the repository's root commit, extracted with ``git
  archive``), i.e. the end-to-end speedup of everything since the seed.
  Skipped (recorded as ``null``) when git or the root commit's tree is
  unavailable, e.g. in a shallow checkout;
* **batched** — the same Figure 3 point with the batching path off vs. on
  (coordinator value batching + learner batch drain + kernel same-actor
  dispatch).  Batching packs ~16 values of 2 KB into each 32 KB consensus
  instance, so far fewer kernel events are spent per ordered command; the
  headline ``speedup`` is ordered commands per wall-clock second, and the
  events-per-command ratio is recorded alongside it.

Every macro run happens in a fresh subprocess so both sides pay identical
interpreter/import/warm-up costs.  Run from the repository root:

    PYTHONPATH=src python benchmarks/bench_kernel.py

``--smoke`` shrinks the workload for CI smoke runs.  The acceptance bar for
the fast-path PR was a >= 2x macro speedup over the seed.
"""

from __future__ import annotations

import json
import os
import platform
import shutil
import subprocess
import sys
import tempfile
import time
from typing import Dict, Optional

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.sim.kernel import Simulator
from repro.sim.legacy import LegacySimulator

#: Events executed by the micro benchmark.
MICRO_EVENTS = 200_000

#: Every N-th micro event also arms-and-cancels a decoy timer.
MICRO_CANCEL_EVERY = 4

#: Scaled-down Figure 3 point used by the macro benchmarks.
MACRO_VALUE_SIZE = 2048
MACRO_WARMUP = 0.05
MACRO_DURATION = 0.25
MACRO_REPEATS = 5

_MACRO_SCRIPT = """
import time
INJECT = {inject!r}
if INJECT:
    import repro.sim.actor as actor_mod
    import repro.core.amcast as amcast
    from repro.sim.legacy import LegacySimulator, LegacyNetwork

    def _legacy_simulator(**kwargs):
        # The seed kernel predates batch_dispatch/profile: the injected side
        # runs without them, exactly like the seed did.
        return LegacySimulator()

    actor_mod.Simulator = LegacySimulator
    amcast.Simulator = _legacy_simulator
    amcast.Network = LegacyNetwork
from repro.bench.fig3_baseline import run_fig3_point
from repro.sim.disk import StorageMode
t0 = time.perf_counter()
result = run_fig3_point({value_size}, StorageMode.IN_MEMORY, warmup={warmup}, duration={duration})
elapsed = time.perf_counter() - t0
assert result.metrics["ops_per_s"] > 0
print(elapsed)
"""

_BATCHED_SCRIPT = """
import json, time
from repro.bench.fig3_baseline import run_fig3_point
from repro.sim.disk import StorageMode
t0 = time.perf_counter()
result = run_fig3_point(
    {value_size}, StorageMode.IN_MEMORY, warmup={warmup}, duration={duration},
    batching_enabled={batching},
)
elapsed = time.perf_counter() - t0
assert result.metrics["ops_per_s"] > 0
print(json.dumps({{
    "elapsed": elapsed,
    "events": result.metrics["events_processed"],
    "ops_per_s": result.metrics["ops_per_s"],
    "latency_mean_ms": result.metrics["latency_mean_ms"],
}}))
"""


def _micro_workload(sim) -> int:
    """Self-rescheduling event storm with a cancelled-timer mix.

    Each firing reschedules itself a little into the future (like a message
    hop) and every ``MICRO_CANCEL_EVERY``-th firing also arms a far-future
    timer and immediately cancels it (like a retransmission timer disarmed by
    the ack) — the pattern that makes lazy-cancellation compaction matter.
    """
    state = {"fired": 0}
    target = MICRO_EVENTS

    def fire() -> None:
        fired = state["fired"] = state["fired"] + 1
        if fired >= target:
            return
        sim.schedule(0.0001, fire)
        if fired % MICRO_CANCEL_EVERY == 0:
            sim.schedule(1000.0, fire).cancel()

    for _ in range(16):
        sim.schedule(0.0001, fire)
    sim.run(until=1e9)
    return state["fired"]


def bench_micro() -> Dict[str, float]:
    """Events/second of the fast-path kernel vs. the seed-snapshot kernel."""
    results: Dict[str, float] = {}
    for label, factory in (("fast", Simulator), ("legacy", LegacySimulator)):
        # Best-of-5: single-core runners wobble by ~10%; the minimum is the
        # only repeatable statistic for a ratio benchmark.
        best = float("inf")
        for _ in range(5):
            sim = factory()
            start = time.perf_counter()
            fired = _micro_workload(sim)
            elapsed = time.perf_counter() - start
            assert fired >= MICRO_EVENTS
            best = min(best, elapsed)
        results[f"{label}_wall_s"] = best
        results[f"{label}_events_per_s"] = MICRO_EVENTS / best
    results["events"] = MICRO_EVENTS
    results["speedup"] = results["fast_events_per_s"] / results["legacy_events_per_s"]
    return results


def _fig3_wall_s(pythonpath: str, inject: bool) -> float:
    """One scaled-down Figure 3 point in a fresh subprocess; returns seconds."""
    script = _MACRO_SCRIPT.format(
        inject="legacy" if inject else "",
        value_size=MACRO_VALUE_SIZE,
        warmup=MACRO_WARMUP,
        duration=MACRO_DURATION,
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = pythonpath
    out = subprocess.run(
        [sys.executable, "-c", script], capture_output=True, text=True, env=env, check=True
    )
    return float(out.stdout.strip().splitlines()[-1])


def bench_macro_injected() -> Dict[str, float]:
    """Fig 3 wall clock: current stack vs. seed kernel+network injected.

    Runs are interleaved fast/legacy so slow-machine drift hits both sides.
    """
    src = os.path.join(REPO_ROOT, "src")
    fast, legacy = [], []
    for _ in range(MACRO_REPEATS):
        fast.append(_fig3_wall_s(src, inject=False))
        legacy.append(_fig3_wall_s(src, inject=True))
    return {
        "value_size": MACRO_VALUE_SIZE,
        "storage": "memory",
        "warmup": MACRO_WARMUP,
        "duration": MACRO_DURATION,
        "fast_wall_s": min(fast),
        "legacy_wall_s": min(legacy),
        "speedup": min(legacy) / min(fast),
    }


def _fig3_batched_run(batching: bool) -> Dict[str, float]:
    """One scaled-down Figure 3 point with batching off/on; parsed metrics."""
    script = _BATCHED_SCRIPT.format(
        value_size=MACRO_VALUE_SIZE,
        warmup=MACRO_WARMUP,
        duration=MACRO_DURATION,
        batching=batching,
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    out = subprocess.run(
        [sys.executable, "-c", script], capture_output=True, text=True, env=env, check=True
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


def bench_macro_batched() -> Dict[str, object]:
    """Fig 3 wall clock: unbatched fast path vs. the full batching path.

    Both sides run the current stack; the batched side enables coordinator
    value batching (which also turns on the learner batch drain and the
    kernel's same-actor dispatch).  Each ordered command then amortises its
    ring circulation across a whole batch, so the cost that matters —
    **ordered commands per wall-clock second** — is the headline ``speedup``.
    Runs are interleaved so slow-machine drift hits both sides.
    """
    unbatched, batched = [], []
    for _ in range(MACRO_REPEATS):
        unbatched.append(_fig3_batched_run(batching=False))
        batched.append(_fig3_batched_run(batching=True))

    def side(runs) -> Dict[str, float]:
        best = max(
            runs, key=lambda r: r["ops_per_s"] * MACRO_DURATION / r["elapsed"]
        )
        commands = best["ops_per_s"] * MACRO_DURATION
        return {
            "wall_s": best["elapsed"],
            "events": best["events"],
            "sim_ops_per_s": best["ops_per_s"],
            "latency_mean_ms": best["latency_mean_ms"],
            "commands": commands,
            "commands_per_wall_s": commands / best["elapsed"],
            "events_per_command": best["events"] / commands if commands else None,
        }

    off, on = side(unbatched), side(batched)
    return {
        "value_size": MACRO_VALUE_SIZE,
        "storage": "memory",
        "warmup": MACRO_WARMUP,
        "duration": MACRO_DURATION,
        "unbatched": off,
        "batched": on,
        "speedup": on["commands_per_wall_s"] / off["commands_per_wall_s"],
    }


def bench_profile(smoke: bool) -> Dict[str, object]:
    """Profile one Figure 3 point: kernel event counts + cProfile hot spots.

    Runs in-process (timing-sensitive benches above run in subprocesses and
    are unaffected).  Two instruments on one run: a
    :class:`repro.sim.profile.SimProfile` installed on the kernel attributes
    events and wall time to each callback, and the cProfile wrapper ranks
    functions by exclusive time.
    """
    from repro.bench.fig3_baseline import run_fig3_point
    from repro.sim.disk import StorageMode
    from repro.sim.profile import SimProfile, profile_function

    warmup = 0.01 if smoke else MACRO_WARMUP
    duration = 0.05 if smoke else MACRO_DURATION
    sim_profile = SimProfile()
    result, hot = profile_function(
        run_fig3_point,
        MACRO_VALUE_SIZE,
        StorageMode.IN_MEMORY,
        warmup=warmup,
        duration=duration,
        profile=sim_profile,
        top=20,
    )
    assert result.metrics["ops_per_s"] > 0
    return {
        "value_size": MACRO_VALUE_SIZE,
        "storage": "memory",
        "warmup": warmup,
        "duration": duration,
        "sim": sim_profile.as_dict(top=15),
        "hot_functions": hot,
    }


def _seed_commit_src() -> Optional[str]:
    """Extract the root commit's ``src`` tree; returns its path or ``None``."""
    try:
        root = subprocess.run(
            ["git", "rev-list", "--max-parents=0", "HEAD"],
            capture_output=True, text=True, cwd=REPO_ROOT, check=True,
        ).stdout.split()[0]
        tmpdir = tempfile.mkdtemp(prefix="seed-src-")
        archive = subprocess.run(
            ["git", "archive", root, "src"],
            capture_output=True, cwd=REPO_ROOT, check=True,
        ).stdout
        subprocess.run(["tar", "-x"], input=archive, cwd=tmpdir, check=True)
        return os.path.join(tmpdir, "src")
    except (OSError, subprocess.CalledProcessError, IndexError):
        return None


def bench_macro_seed_commit() -> Optional[Dict[str, float]]:
    """Fig 3 wall clock: current tree vs. the actual seed (root) commit."""
    seed_src = _seed_commit_src()
    if seed_src is None:
        return None
    src = os.path.join(REPO_ROOT, "src")
    try:
        fast, seed = [], []
        for _ in range(MACRO_REPEATS):
            fast.append(_fig3_wall_s(src, inject=False))
            seed.append(_fig3_wall_s(seed_src, inject=False))
        return {
            "value_size": MACRO_VALUE_SIZE,
            "storage": "memory",
            "warmup": MACRO_WARMUP,
            "duration": MACRO_DURATION,
            "fast_wall_s": min(fast),
            "seed_wall_s": min(seed),
            "speedup": min(seed) / min(fast),
        }
    finally:
        shutil.rmtree(os.path.dirname(seed_src), ignore_errors=True)


def main() -> int:
    smoke = "--smoke" in sys.argv
    with_profile = "--profile" in sys.argv
    global MICRO_EVENTS, MACRO_REPEATS
    if smoke:
        MICRO_EVENTS = 20_000
        MACRO_REPEATS = 1

    micro = bench_micro()
    print(
        f"micro: fast {micro['fast_events_per_s']:,.0f} ev/s, "
        f"legacy {micro['legacy_events_per_s']:,.0f} ev/s, "
        f"speedup {micro['speedup']:.2f}x"
    )
    injected = bench_macro_injected()
    print(
        f"macro fig3 vs injected seed kernel+network: fast {injected['fast_wall_s']:.2f}s, "
        f"legacy {injected['legacy_wall_s']:.2f}s, speedup {injected['speedup']:.2f}x"
    )
    seed_commit = bench_macro_seed_commit()
    if seed_commit is None:
        print("macro fig3 vs seed commit: skipped (git history unavailable)")
    else:
        print(
            f"macro fig3 vs seed commit: fast {seed_commit['fast_wall_s']:.2f}s, "
            f"seed {seed_commit['seed_wall_s']:.2f}s, speedup {seed_commit['speedup']:.2f}x"
        )
    batched = bench_macro_batched()
    print(
        f"macro fig3 batching off vs on: "
        f"{batched['unbatched']['commands_per_wall_s']:,.0f} vs "
        f"{batched['batched']['commands_per_wall_s']:,.0f} commands/wall-s, "
        f"speedup {batched['speedup']:.2f}x "
        f"(events/command {batched['unbatched']['events_per_command']:.1f} -> "
        f"{batched['batched']['events_per_command']:.1f})"
    )

    profile = None
    if with_profile:
        profile = bench_profile(smoke)
        top = profile["sim"]["events_by_callback"][:3]
        print(
            "profile: "
            + ", ".join(
                f"{row['callback']} x{row['events']} ({row['wall_s']:.3f}s)" for row in top
            )
        )

    payload = {
        "benchmark": "bench_kernel",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "smoke": smoke,
        "micro": micro,
        "macro_fig3_injected": injected,
        "macro_fig3_seed_commit": seed_commit,
        "batched": batched,
        "profile": profile,
    }
    out_path = os.path.join(REPO_ROOT, "BENCH_kernel.json")
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
