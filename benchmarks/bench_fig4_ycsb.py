"""Figure 4 — YCSB comparison of Cassandra-like, MRP-Store (two configs), MySQL-like.

Regenerates the throughput bars of Figure 4 (Section 8.3.2) and the workload-F
latency breakdown.  The expected ranking: the eventually consistent store (no
ordering) is fastest on most workloads, independent rings beat the globally
ordered configuration, and MRP-Store is comparable to the single-server store.
"""

from __future__ import annotations

import pytest

from repro.bench import print_results, run_fig4_point
from repro.bench.fig4_ycsb import FIG4_SYSTEMS, FIG4_WORKLOADS

_RESULTS = []

#: Reduced client count / database so the grid completes quickly.
_CLIENT_THREADS = 40
_RECORDS = 2000


@pytest.mark.parametrize("workload", FIG4_WORKLOADS)
@pytest.mark.parametrize("system_name", FIG4_SYSTEMS)
def test_fig4_point(benchmark, system_name: str, workload: str, windows):
    """One (system, workload) bar of Figure 4."""
    warmup, duration = windows

    def run():
        return run_fig4_point(
            system_name,
            workload,
            client_threads=_CLIENT_THREADS,
            record_count=_RECORDS,
            warmup=warmup,
            duration=duration,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS.append(result)
    benchmark.extra_info.update(result.metrics)
    assert result.metrics["throughput_ops"] > 0


def test_fig4_report(benchmark):
    """Print the Figure 4 grid and check the consistency-cost ranking."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _RESULTS:
        pytest.skip("no fig4 points were collected")
    print_results(
        _RESULTS,
        param_keys=["workload", "system"],
        metric_keys=["throughput_ops", "latency_mean_ms"],
        title="Figure 4 — YCSB throughput (ops/s) per system",
    )
    by_key = {(r.params["workload"], r.params["system"]): r.metrics for r in _RESULTS}
    workloads = sorted({r.params["workload"] for r in _RESULTS})
    for workload in workloads:
        if workload == "E":
            # Workload E (range scans) is the paper's exception: the eventual
            # store loses its advantage because scans hit every partition.
            continue
        cassandra = by_key.get((workload, "cassandra"))
        ordered = by_key.get((workload, "mrp-store"))
        if cassandra and ordered:
            assert cassandra["throughput_ops"] >= ordered["throughput_ops"] * 0.8, (
                f"workload {workload}: the unordered store should not lose to global ordering"
            )
        indep = by_key.get((workload, "mrp-store-indep"))
        if indep and ordered:
            assert indep["throughput_ops"] >= ordered["throughput_ops"] * 0.7, (
                f"workload {workload}: independent rings should not lose to the global ring"
            )
