"""Figure 6 — vertical scalability of dLog (one disk per ring).

Regenerates the aggregate-throughput bars and the disk-1 latency CDF of
Figure 6 (Section 8.4.1).  Expected shape: aggregate throughput grows close to
linearly with the number of rings/disks (the paper reports 95-106 % relative
increments) while latency stays roughly flat.
"""

from __future__ import annotations

import pytest

from repro.bench import print_results, relative_increments, run_fig6_point

_RESULTS = []

_RING_COUNTS = (1, 2, 3, 4, 5)
_CLIENTS_PER_RING = 8


@pytest.mark.parametrize("rings", _RING_COUNTS)
def test_fig6_point(benchmark, rings: int, windows):
    """One ring-count point of Figure 6."""
    warmup, duration = windows

    def run():
        return run_fig6_point(
            rings, clients_per_ring=_CLIENTS_PER_RING, warmup=warmup, duration=duration
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS.append(result)
    benchmark.extra_info.update(result.metrics)
    assert result.metrics["aggregate_ops"] > 0


@pytest.mark.parametrize("configuration", ["independent", "shared"])
@pytest.mark.parametrize("rings", _RING_COUNTS)
def test_fig6_point_sharded(benchmark, rings: int, windows, workers, configuration):
    """One ring-count point on the sharded engine (``--workers N``).

    Each ring runs as its own shard spread over ``N`` worker processes.
    ``independent`` gives every shard its own replica; ``shared`` is the
    figure's *original* deployment — shared learner plus the common ring,
    reconstructed by the merge stage.  Compare ``aggregate_ops`` and the
    recorded wall clock against the single-loop points above to see the
    multi-core scaling curve.
    """
    if workers is None:
        pytest.skip("pass --workers N to run the sharded figure points")
    warmup, duration = windows

    def run():
        return run_fig6_point(
            rings,
            clients_per_ring=_CLIENTS_PER_RING,
            warmup=warmup,
            duration=duration,
            workers=workers,
            sharded_configuration=configuration,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(result.metrics)
    assert result.metrics["aggregate_ops"] > 0


def test_fig6_report(benchmark):
    """Print the Figure 6 series and check near-linear scaling."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _RESULTS:
        pytest.skip("no fig6 points were collected")
    ordered = sorted(_RESULTS, key=lambda r: r.params["rings"])
    aggregates = [r.metrics["aggregate_ops"] for r in ordered]
    increments = relative_increments(aggregates)
    for result, increment in zip(ordered, increments):
        result.metrics["relative_increment_pct"] = increment
    print_results(
        ordered,
        param_keys=["rings"],
        metric_keys=["aggregate_ops", "relative_increment_pct", "latency_disk1_mean_ms"],
        title="Figure 6 — dLog vertical scalability (async disk, one disk per ring)",
    )
    assert all(b >= a for a, b in zip(aggregates, aggregates[1:])), (
        "aggregate throughput should not decrease as rings/disks are added"
    )
    if len(aggregates) >= 3:
        scaling = aggregates[-1] / aggregates[0]
        assert scaling >= 0.6 * len(aggregates), (
            f"scaling with {len(aggregates)} rings should be near-linear, got {scaling:.2f}x"
        )
