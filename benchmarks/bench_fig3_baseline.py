"""Figure 3 — Multi-Ring Paxos baseline: throughput, latency, CPU, latency CDF.

Regenerates the four graphs of Figure 3 (Section 8.3.1): one ring of three
processes, request sizes from 512 B to 32 KB, five storage modes.  The rows
printed mirror the paper's series; the expected shape is documented in
EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.bench import print_results, run_fig3_point
from repro.bench.fig3_baseline import FIG3_STORAGE_MODES, FIG3_VALUE_SIZES
from repro.sim.disk import StorageMode

_RESULTS = []


@pytest.mark.parametrize("storage", FIG3_STORAGE_MODES, ids=lambda m: m.value)
@pytest.mark.parametrize("value_size", FIG3_VALUE_SIZES)
def test_fig3_point(benchmark, storage: StorageMode, value_size: int, windows):
    """One (value size, storage mode) point of Figure 3."""
    warmup, duration = windows

    def run():
        return run_fig3_point(value_size, storage, warmup=warmup, duration=duration)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS.append(result)
    benchmark.extra_info.update(result.metrics)
    assert result.metrics["ops_per_s"] > 0
    assert result.metrics["latency_mean_ms"] > 0


def test_fig3_report(benchmark):
    """Print the collected Figure 3 rows (throughput / latency / CPU)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _RESULTS:
        pytest.skip("no fig3 points were collected")
    print_results(
        _RESULTS,
        param_keys=["storage", "value_size"],
        metric_keys=["throughput_mbps", "ops_per_s", "latency_mean_ms", "coordinator_cpu_pct"],
        title="Figure 3 — single-ring baseline (five storage modes)",
    )
    # Shape assertions: larger requests carry more throughput; memory beats
    # synchronous disk; SSD beats HDD in synchronous mode.
    by_key = {(r.params["storage"], r.params["value_size"]): r.metrics for r in _RESULTS}
    modes = {r.params["storage"] for r in _RESULTS}
    sizes = sorted({r.params["value_size"] for r in _RESULTS})
    if len(sizes) >= 2:
        for mode in modes:
            small = by_key[(mode, sizes[0])]["throughput_mbps"]
            large = by_key[(mode, sizes[-1])]["throughput_mbps"]
            assert large > small, f"throughput should grow with request size for {mode}"
    if "memory" in modes and "sync-hdd" in modes:
        for size in sizes:
            assert (
                by_key[("memory", size)]["throughput_mbps"]
                >= by_key[("sync-hdd", size)]["throughput_mbps"]
            )
    if "sync-ssd" in modes and "sync-hdd" in modes:
        for size in sizes:
            assert (
                by_key[("sync-ssd", size)]["latency_mean_ms"]
                <= by_key[("sync-hdd", size)]["latency_mean_ms"]
            )
