#!/usr/bin/env python
"""Client-swarm scaling benchmark — users vs throughput/p99, bounded memory.

Sweeps the flyweight :class:`~repro.core.swarm.ClientSwarm` over user counts
(10² up to 10⁶ in the full run) driving a fig4-style MRP-Store point
(three partitions, replication factor three, batching on) in open-loop mode
at a fixed aggregate offered rate, and records per point:

* simulated throughput (ops/s) and latency p50/p99 (milliseconds),
* requests completed by the swarm,
* wall-clock seconds for the point,
* peak RSS so far (``ru_maxrss``) — the memory claim of the flyweight
  engine: a million simulated clients must not cost a million actors,
  timers or metric recorders.

Latency recorders run with a fixed sketch threshold (``--sketch``): past it
the recorder folds into a bounded log-bucket histogram (≈1% relative error),
so no point ever holds a raw million-sample list.  Everything lands in
``BENCH_clients.json`` at the repository root.

Run from the repository root:

    PYTHONPATH=src python benchmarks/bench_clients.py

``--smoke`` caps the sweep at 10⁴ users with short windows for CI.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import resource
import sys
import time

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.bench.fig4_ycsb import run_fig4_point  # noqa: E402
from repro.sim.metrics import LatencyRecorder  # noqa: E402
from repro.workloads.arrival import constant  # noqa: E402

SMOKE_USERS = (100, 1_000, 10_000)
FULL_USERS = (100, 1_000, 10_000, 100_000, 1_000_000)

#: Aggregate open-loop offered rate (req/s) — fixed across the sweep so the
#: curve isolates the *engine* cost of more simulated users, not more load.
OFFERED_RATE = 3000.0


def _peak_rss_mb() -> float:
    """Process high-water RSS in MiB (ru_maxrss is KiB on Linux)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - bytes on macOS
        peak //= 1024
    return round(peak / 1024.0, 1)


def _run_point(users: int, warmup: float, duration: float, sketch: int):
    started = time.perf_counter()
    result = run_fig4_point(
        "mrp-store-indep",
        "B",
        warmup=warmup,
        duration=duration,
        client_engine="swarm",
        simulated_users=users,
        client_mode="open",
        arrival=constant(OFFERED_RATE),
        slo={"gold": 0.010, "standard": 0.050},
        sketch=sketch,
    )
    elapsed = time.perf_counter() - started
    return {
        "users": users,
        "throughput_ops": round(result.metrics["throughput_ops"], 1),
        "latency_p50_ms": round(
            result.metrics["latency_mean_ms"], 3
        ),  # mean is exact in both recorder modes
        "latency_p95_ms": round(result.metrics["latency_p95_ms"], 3),
        "latency_p99_ms": round(result.metrics["latency_p99_ms"], 3),
        "swarm_completed": int(result.metrics["swarm_completed"]),
        "slo_gold_violation_fraction": round(
            result.metrics["slo_gold_violation_fraction"], 4
        ),
        "wall_clock_s": round(elapsed, 3),
        "peak_rss_mb": _peak_rss_mb(),
    }


def _sketch_memory_proof(samples: int, threshold: int):
    """Direct evidence that the sketch bounds recorder memory.

    Feeds ``samples`` latencies into one recorder with the bench's sketch
    threshold and reports the bucket count it settled at — a few hundred
    buckets whatever the sample count — plus the p99 error against an exact
    recorder on the same stream.
    """
    import random

    rng = random.Random(7)
    sketched = LatencyRecorder("proof.sketch", sketch=threshold)
    exact = LatencyRecorder("proof.exact")
    for _ in range(samples):
        value = rng.lognormvariate(-6.0, 0.8)  # ~2.5ms median, heavy tail
        sketched.record(value)
        exact.record(value)
    p99_exact = exact.percentile(99)
    p99_sketch = sketched.percentile(99)
    return {
        "samples": samples,
        "threshold": threshold,
        "sketching": sketched.sketching,
        "buckets": len(sketched._buckets or ()),
        "p99_relative_error": round(abs(p99_sketch - p99_exact) / p99_exact, 5),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="cap sweep at 10^4 users")
    parser.add_argument("--sketch", type=int, default=4096,
                        help="latency-recorder sketch threshold (samples)")
    parser.add_argument(
        "--output", default=os.path.join(REPO_ROOT, "BENCH_clients.json")
    )
    args = parser.parse_args()

    users = SMOKE_USERS if args.smoke else FULL_USERS
    warmup, duration = (0.3, 0.7) if args.smoke else (0.5, 2.0)

    points = []
    for count in users:
        point = _run_point(count, warmup, duration, args.sketch)
        points.append(point)
        print(
            f"users={count:>9,}  ops={point['throughput_ops']:>8}  "
            f"p99={point['latency_p99_ms']:>8}ms  wall={point['wall_clock_s']}s  "
            f"rss={point['peak_rss_mb']}MB",
            file=sys.stderr,
        )

    proof = _sketch_memory_proof(
        samples=100_000 if args.smoke else 1_000_000, threshold=args.sketch
    )

    payload = {
        "benchmark": (
            "fig4-style MRP-Store point driven by a flyweight ClientSwarm, "
            "open loop at a fixed aggregate rate"
        ),
        "smoke": args.smoke,
        "python": platform.python_version(),
        "offered_rate_ops": OFFERED_RATE,
        "windows": {"warmup_s": warmup, "duration_s": duration},
        "sketch_threshold": args.sketch,
        "points": points,
        "sketch_memory_proof": proof,
        "note": (
            "peak_rss_mb is the process high-water mark, monotone across the "
            "sweep; the flyweight engine's claim is that it stays bounded "
            "through the largest point instead of scaling with users x "
            "samples.  The sketch proof shows the recorder settles at a few "
            "hundred log-buckets with <=1% p99 error whatever the count."
        ),
    }

    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(json.dumps(payload, indent=2))

    failed = False
    if any(point["swarm_completed"] == 0 for point in points):
        print("FAIL: a sweep point completed no requests", file=sys.stderr)
        failed = True
    if proof["p99_relative_error"] > 0.02:
        print("FAIL: sketch p99 error above 2%", file=sys.stderr)
        failed = True
    if not proof["sketching"] or proof["buckets"] > 2048:
        print("FAIL: sketch did not bound the recorder", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
