"""Figure 8 — impact of recovery on performance.

Regenerates the throughput/latency timeline of Figure 8 (Section 8.5): a
replica of a three-replica partition is terminated and later restarted while
an open-loop client offers a constant load; replicas checkpoint periodically
and acceptors trim their logs.  Expected shape: throughput is essentially
unaffected by the crash (clients take the first reply), checkpoints do not
disrupt the service, and the terminated replica catches up after recovery.
"""

from __future__ import annotations

import pytest

from repro.bench import FIG8_EVENTS, run_fig8

_RESULT = {}


def test_fig8_timeline(benchmark, full_scale):
    """Run the recovery timeline at reduced (or full) scale."""
    time_scale = 1.0 if full_scale else 0.05
    load = 6000.0 if full_scale else 2000.0

    def run():
        return run_fig8(time_scale=time_scale, load_ops_per_s=load)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULT["result"] = result
    benchmark.extra_info.update(result.metrics)
    assert result.metrics["victim_recovered"] == 1.0
    assert result.metrics["checkpoints_taken"] >= 1.0


def test_fig8_report(benchmark):
    """Print the timeline summary and check the recovery impact shape."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    result = _RESULT.get("result")
    if result is None:
        pytest.skip("the timeline benchmark did not run")
    print()
    print("Figure 8 — impact of recovery on performance")
    for key in (
        "throughput_before_crash",
        "throughput_while_down",
        "throughput_after_recovery",
        "latency_mean_ms",
        "checkpoints_taken",
    ):
        print(f"  {key:>28}: {result.metrics[key]:.1f}")
    print("  events:", ", ".join(f"t={t:.1f}s #{int(c)} {FIG8_EVENTS[int(c)]}" for t, c in result.series["events"]))
    before = result.metrics["throughput_before_crash"]
    down = result.metrics["throughput_while_down"]
    after = result.metrics["throughput_after_recovery"]
    # Killing one replica of three must not collapse throughput, and the
    # system must return to (or stay at) the offered load after recovery.
    assert down >= before * 0.8
    assert after >= before * 0.8
