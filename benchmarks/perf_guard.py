#!/usr/bin/env python
"""Performance guard: fail when key benchmark numbers regress.

Compares freshly written benchmark files against their committed baselines
(``git show <ref>:<file>``, default ``HEAD``) and exits non-zero on a
regression.

``BENCH_kernel.json`` — wall-clock metrics, guarded with a loose 20%
tolerance floor (shared CI runners are noisy; the guard is meant to catch
real regressions, not wobble):

* ``micro.speedup`` — fast kernel events/s over the seed-snapshot kernel.
  A ratio, so it is robust to the absolute speed of the CI machine.
* ``batched.batched.commands_per_wall_s`` — ordered commands per wall-clock
  second with the full batching path on.

``BENCH_parallel.json`` — *deterministic* barrier-plane fields.  IPC byte
counts are fixed by the seed, not the machine, so the ceiling is tight
(+20% headroom covers intentional protocol growth, nothing else) and the
invariants are exact:

* ``barrier_overhead.wire_codec.ipc_bytes_per_barrier`` must stay at or
  below baseline * 1.20 (a *ceiling* — lower is better, unlike the
  wall-clock floors above);
* ``barrier_overhead.ipc_bytes_reduction`` must stay >= 0.30 (the compact
  codec's acceptance bar vs legacy pickling);
* ``barrier_count.adaptive`` must stay strictly below ``barrier_count.fixed``
  (adaptive horizons earn their keep);
* ``skip_windows.worker_windows_skipped`` must stay > 0 (horizon-aware
  scheduling actually skips the idle worker).

Fields missing from the committed baseline are skipped gracefully, so the
guard works on the PR that introduces them.  Run from the repository root:

    PYTHONPATH=src python benchmarks/bench_kernel.py --smoke
    PYTHONPATH=src python benchmarks/bench_parallel.py --smoke
    python benchmarks/perf_guard.py
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from typing import Any, Dict, Optional, Tuple

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))

#: Guarded metrics: (json path, human label).
GUARDED = (
    (("micro", "speedup"), "micro kernel speedup (fast vs legacy)"),
    (("batched", "batched", "commands_per_wall_s"), "batched commands per wall-second"),
)

#: Ceiling-guarded deterministic metrics of BENCH_parallel.json:
#: (json path, human label).  Lower is better; current must stay at or below
#: baseline * (1 + TOLERANCE).
PARALLEL_CEILINGS = (
    (
        ("barrier_overhead", "wire_codec", "ipc_bytes_per_barrier"),
        "wire-codec IPC bytes per barrier (fig6 smoke point)",
    ),
)

#: Maximum tolerated drop below (floors) / rise above (ceilings) baseline.
TOLERANCE = 0.20

#: The codec's acceptance bar: IPC bytes per barrier vs legacy pickling.
MIN_CODEC_REDUCTION = 0.30


def _dig(payload: Dict[str, Any], path: Tuple[str, ...]) -> Optional[float]:
    node: Any = payload
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return float(node) if isinstance(node, (int, float)) else None


def _committed_baseline(ref: str, name: str = "BENCH_kernel.json") -> Optional[Dict[str, Any]]:
    try:
        out = subprocess.run(
            ["git", "show", f"{ref}:{name}"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            check=True,
        ).stdout
        return json.loads(out)
    except (OSError, subprocess.CalledProcessError, json.JSONDecodeError):
        return None


def _guard_parallel(args: argparse.Namespace) -> bool:
    """Guard BENCH_parallel.json's deterministic fields; True on failure.

    A missing current file only warns (the kernel bench may be guarded on
    its own), and a baseline without the round-2 fields skips the ceiling —
    the invariants below still run, because they need no baseline at all.
    """
    try:
        with open(args.parallel) as fh:
            current = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"perf-guard: cannot read {args.parallel} ({exc}); skipping parallel guard")
        return False

    failed = False
    baseline = _committed_baseline(args.baseline, "BENCH_parallel.json")
    for path, label in PARALLEL_CEILINGS:
        cur = _dig(current, path)
        base = _dig(baseline, path) if baseline else None
        name = ".".join(path)
        if cur is None or base is None:
            print(f"perf-guard: {name}: missing on one side (base={base}, current={cur}); skipping")
            continue
        ceiling = base * (1.0 + TOLERANCE)
        verdict = "ok" if cur <= ceiling else "REGRESSED"
        print(
            f"perf-guard: {label}: current {cur:,.1f} vs baseline {base:,.1f} "
            f"(ceiling {ceiling:,.1f}) -> {verdict}"
        )
        if cur > ceiling:
            failed = True

    reduction = _dig(current, ("barrier_overhead", "ipc_bytes_reduction"))
    if reduction is not None:
        verdict = "ok" if reduction >= MIN_CODEC_REDUCTION else "REGRESSED"
        print(
            f"perf-guard: wire-codec IPC reduction vs legacy: {reduction:.1%} "
            f"(minimum {MIN_CODEC_REDUCTION:.0%}) -> {verdict}"
        )
        if reduction < MIN_CODEC_REDUCTION:
            failed = True

    adaptive = _dig(current, ("barrier_count", "adaptive"))
    fixed = _dig(current, ("barrier_count", "fixed"))
    if adaptive is not None and fixed is not None:
        verdict = "ok" if adaptive < fixed else "REGRESSED"
        print(
            f"perf-guard: adaptive barriers {adaptive:,.0f} vs fixed "
            f"{fixed:,.0f} (must be strictly fewer) -> {verdict}"
        )
        if adaptive >= fixed:
            failed = True

    skipped = _dig(current, ("skip_windows", "worker_windows_skipped"))
    if skipped is not None:
        verdict = "ok" if skipped > 0 else "REGRESSED"
        print(
            f"perf-guard: skipped idle-worker windows: {skipped:,.0f} "
            f"(must be > 0) -> {verdict}"
        )
        if skipped <= 0:
            failed = True

    return failed


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", default="HEAD", help="git ref holding the baseline BENCH_kernel.json"
    )
    parser.add_argument(
        "--current",
        default=os.path.join(REPO_ROOT, "BENCH_kernel.json"),
        help="path of the freshly written kernel benchmark file",
    )
    parser.add_argument(
        "--parallel",
        default=os.path.join(REPO_ROOT, "BENCH_parallel.json"),
        help="path of the freshly written parallel benchmark file",
    )
    args = parser.parse_args()

    try:
        with open(args.current) as fh:
            current = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"perf-guard: cannot read {args.current}: {exc}")
        return 2

    failed = False
    baseline = _committed_baseline(args.baseline)
    if baseline is None:
        print(f"perf-guard: no committed BENCH_kernel.json at {args.baseline}; skipping")
    else:
        for path, label in GUARDED:
            base = _dig(baseline, path)
            cur = _dig(current, path)
            name = ".".join(path)
            if base is None or cur is None:
                print(f"perf-guard: {name}: missing on one side (base={base}, current={cur}); skipping")
                continue
            floor = base * (1.0 - TOLERANCE)
            verdict = "ok" if cur >= floor else "REGRESSED"
            print(
                f"perf-guard: {label}: current {cur:,.2f} vs baseline {base:,.2f} "
                f"(floor {floor:,.2f}) -> {verdict}"
            )
            if cur < floor:
                failed = True

    failed = _guard_parallel(args) or failed

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
