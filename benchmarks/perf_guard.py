#!/usr/bin/env python
"""Performance guard: fail when key benchmark numbers regress.

Compares the freshly written ``BENCH_kernel.json`` against the committed
baseline (``git show <ref>:BENCH_kernel.json``, default ``HEAD``) and exits
non-zero when either guarded metric drops more than the tolerance below its
baseline:

* ``micro.speedup`` — fast kernel events/s over the seed-snapshot kernel.
  A ratio, so it is robust to the absolute speed of the CI machine.
* ``batched.batched.commands_per_wall_s`` — ordered commands per wall-clock
  second with the full batching path on.

The tolerance is deliberately loose (20%): shared CI runners are noisy and
the guard is meant to catch real regressions (an accidental fallback onto a
slow path, a lost fast lane), not wobble.  Run from the repository root:

    PYTHONPATH=src python benchmarks/bench_kernel.py --smoke
    python benchmarks/perf_guard.py
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from typing import Any, Dict, Optional, Tuple

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))

#: Guarded metrics: (json path, human label).
GUARDED = (
    (("micro", "speedup"), "micro kernel speedup (fast vs legacy)"),
    (("batched", "batched", "commands_per_wall_s"), "batched commands per wall-second"),
)

#: Maximum tolerated drop below the committed baseline.
TOLERANCE = 0.20


def _dig(payload: Dict[str, Any], path: Tuple[str, ...]) -> Optional[float]:
    node: Any = payload
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return float(node) if isinstance(node, (int, float)) else None


def _committed_baseline(ref: str) -> Optional[Dict[str, Any]]:
    try:
        out = subprocess.run(
            ["git", "show", f"{ref}:BENCH_kernel.json"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            check=True,
        ).stdout
        return json.loads(out)
    except (OSError, subprocess.CalledProcessError, json.JSONDecodeError):
        return None


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", default="HEAD", help="git ref holding the baseline BENCH_kernel.json"
    )
    parser.add_argument(
        "--current",
        default=os.path.join(REPO_ROOT, "BENCH_kernel.json"),
        help="path of the freshly written benchmark file",
    )
    args = parser.parse_args()

    try:
        with open(args.current) as fh:
            current = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"perf-guard: cannot read {args.current}: {exc}")
        return 2

    baseline = _committed_baseline(args.baseline)
    if baseline is None:
        print(f"perf-guard: no committed BENCH_kernel.json at {args.baseline}; skipping")
        return 0

    failed = False
    for path, label in GUARDED:
        base = _dig(baseline, path)
        cur = _dig(current, path)
        name = ".".join(path)
        if base is None or cur is None:
            print(f"perf-guard: {name}: missing on one side (base={base}, current={cur}); skipping")
            continue
        floor = base * (1.0 - TOLERANCE)
        verdict = "ok" if cur >= floor else "REGRESSED"
        print(
            f"perf-guard: {label}: current {cur:,.2f} vs baseline {base:,.2f} "
            f"(floor {floor:,.2f}) -> {verdict}"
        )
        if cur < floor:
            failed = True

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
