"""Figure 7 — horizontal scalability of MRP-Store across EC2-like regions.

Regenerates the aggregate-throughput bars and the us-west-2 latency CDF of
Figure 7 (Section 8.4.2).  Expected shape: aggregate throughput grows about
linearly with the number of regions; latency in the observed region stays
roughly constant.
"""

from __future__ import annotations

import pytest

from repro.bench import print_results, relative_increments, run_fig7_point

_RESULTS = []

_REGION_COUNTS = (1, 2, 3, 4)
_CLIENTS_PER_REGION = 12


@pytest.mark.parametrize("regions", _REGION_COUNTS)
def test_fig7_point(benchmark, regions: int, windows):
    """One region-count point of Figure 7."""
    warmup, duration = windows
    # WAN rounds are long; give the measurement a little more room than the
    # local experiments while staying far below the paper's 100 s runs.
    duration = max(duration, 3.0)

    def run():
        return run_fig7_point(
            regions,
            clients_per_region=_CLIENTS_PER_REGION,
            warmup=warmup,
            duration=duration,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS.append(result)
    benchmark.extra_info.update(result.metrics)
    assert result.metrics["aggregate_ops"] > 0


@pytest.mark.parametrize("regions", _REGION_COUNTS)
@pytest.mark.parametrize("configuration", ["independent", "shared"])
def test_fig7_point_sharded(benchmark, regions: int, windows, workers, configuration):
    """One region-count point on the sharded engine (``--workers N``).

    One shard per region, spread over ``N`` worker processes — the
    multi-core re-measurement of horizontal scalability.  ``independent``
    drops the global ring; ``shared`` keeps the figure's *original* globally
    ordered deployment — every replica subscribes to its partition ring plus
    the global ring, which runs in its own shard with the replicas' merge
    order reconstructed by the merge stage.
    """
    if workers is None:
        pytest.skip("pass --workers N to run the sharded figure points")
    warmup, duration = windows
    duration = max(duration, 3.0)

    def run():
        return run_fig7_point(
            regions,
            clients_per_region=_CLIENTS_PER_REGION,
            warmup=warmup,
            duration=duration,
            workers=workers,
            sharded_configuration=configuration,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(result.metrics)
    assert result.metrics["aggregate_ops"] > 0


def test_fig7_report(benchmark):
    """Print the Figure 7 series and check scaling plus flat latency."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _RESULTS:
        pytest.skip("no fig7 points were collected")
    ordered = sorted(_RESULTS, key=lambda r: r.params["regions"])
    aggregates = [r.metrics["aggregate_ops"] for r in ordered]
    increments = relative_increments(aggregates)
    for result, increment in zip(ordered, increments):
        result.metrics["relative_increment_pct"] = increment
    print_results(
        ordered,
        param_keys=["regions"],
        metric_keys=["aggregate_ops", "relative_increment_pct", "latency_mean_ms"],
        title="Figure 7 — MRP-Store horizontal scalability across regions",
    )
    assert all(b >= a * 0.95 for a, b in zip(aggregates, aggregates[1:])), (
        "aggregate throughput should grow (or stay flat) as regions are added"
    )
    # Latency comparison: the single-region case is a degenerate local
    # deployment; among genuinely geo-distributed configurations the observed
    # region's latency should stay in the same range (the paper reports an
    # almost constant latency; our simulated global ring adds some growth
    # with its WAN span — recorded in EXPERIMENTS.md).
    latencies = [r.metrics["latency_mean_ms"] for r in ordered if r.params["regions"] >= 2]
    if len(latencies) >= 2 and latencies[0] > 0:
        assert max(latencies) <= max(latencies[0] * 6.0, 400.0), (
            "latency in the observed region should stay within the WAN round-trip range"
        )
